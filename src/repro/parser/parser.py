"""Recursive-descent SQL parser producing QGM box trees."""

from __future__ import annotations

import datetime
import decimal
from typing import Dict, List, Optional, Set, Tuple

from repro.catalog import Catalog
from repro.core.ordering import OrderKey, OrderSpec, SortDirection
from repro.errors import ParseError
from repro.expr.analysis import columns_of
from repro.expr.nodes import (
    Aggregate,
    AggregateKind,
    Arithmetic,
    ArithmeticOp,
    BooleanExpr,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    ComparisonOp,
    DatePart,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
)
from repro.expr.transform import transform
from repro.parser.lexer import Token, TokenKind, tokenize
from repro.qgm.boxes import (
    BaseTableQuantifier,
    Box,
    BoxQuantifier,
    GroupByBox,
    Quantifier,
    SelectBox,
    SelectItem,
)

# Placeholder qualifier for not-yet-resolved unqualified column names.
_UNRESOLVED = "\0unresolved"

_AGG_KINDS = {kind.value.lower(): kind for kind in AggregateKind}


def parse_query(sql: str, catalog: Catalog) -> Box:
    """Parse ``sql`` against ``catalog`` and return the QGM root box."""
    parser = _Parser(tokenize(sql), catalog)
    box = parser.parse_statement()
    parser.expect_eof()
    return box


class _FromEntry:
    """One FROM-clause entry prior to resolution.

    ``outer_join_on`` holds the raw (unresolved) ON predicate when this
    entry is LEFT OUTER JOINed to everything before it; ``None`` for
    comma/inner joins.
    """

    def __init__(
        self,
        alias: str,
        table_name: Optional[str] = None,
        subquery: Optional[Box] = None,
        outer_join_on: Optional[Expression] = None,
    ):
        self.alias = alias
        self.table_name = table_name
        self.subquery = subquery
        self.outer_join_on = outer_join_on


class _Parser:
    def __init__(self, tokens: List[Token], catalog: Catalog):
        self._tokens = tokens
        self._index = 0
        self._catalog = catalog

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._next()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word.upper()}, found {token.text!r}",
                token.line,
                token.column,
            )

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text == char:
            self._next()
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind is not TokenKind.PUNCT or token.text != char:
            raise ParseError(
                f"expected {char!r}, found {token.text!r}",
                token.line,
                token.column,
            )

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected trailing input {token.text!r}",
                token.line,
                token.column,
            )

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Statement structure
    # ------------------------------------------------------------------

    def parse_statement(self) -> Box:
        """A SELECT, possibly a UNION [ALL] chain with a trailing
        ORDER BY / FETCH FIRST applying to the whole union."""
        from repro.qgm.boxes import UnionBox

        first = self.parse_select()
        if not self._peek().is_keyword("union"):
            return first
        branches = [first]
        all_flags = []
        while self._accept_keyword("union"):
            all_flags.append(self._accept_keyword("all"))
            branches.append(self.parse_select())
        for branch in branches[:-1]:
            if not branch.output_order.is_empty() or branch.fetch_first:
                raise ParseError(
                    "ORDER BY / FETCH FIRST must follow the last UNION "
                    "branch, applying to the whole union"
                )
        if len(set(all_flags)) > 1:
            raise ParseError("mixing UNION and UNION ALL is not supported")
        union = UnionBox(branches, all_rows=all_flags[0])
        # A trailing ORDER BY / FETCH FIRST was syntactically absorbed by
        # the last branch; per SQL it governs the whole union — hoist it.
        last = branches[-1]
        if not last.output_order.is_empty():
            union.output_order = self._hoist_union_order(union, last)
            last.output_order = OrderSpec(())
        union.fetch_first = last.fetch_first
        last.fetch_first = None
        return union

    def _hoist_union_order(self, union, last) -> OrderSpec:
        """Re-express the last branch's ORDER BY on the union's outputs
        (positional mapping through the branch's select list)."""
        branch_items = list(last.output_items())
        union_items = list(union.output_items())
        keys: List[OrderKey] = []
        for key in last.output_order:
            position = next(
                (
                    index
                    for index, item in enumerate(branch_items)
                    if item.output == key.column
                ),
                None,
            )
            if position is None:
                raise ParseError(
                    "UNION ORDER BY must reference output columns"
                )
            keys.append(
                OrderKey(union_items[position].output, key.direction)
            )
        return OrderSpec(keys)

    def parse_select(self) -> Box:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        raw_items = self._parse_select_list()
        self._expect_keyword("from")
        from_entries, inner_on = self._parse_from_list()
        predicate = None
        if self._accept_keyword("where"):
            predicate = self._parse_expression()
        # INNER JOIN ... ON predicates are plain conjuncts of the WHERE.
        for on_predicate in inner_on:
            if predicate is None:
                predicate = on_predicate
            else:
                predicate = BooleanExpr(
                    BooleanOp.AND, (predicate, on_predicate)
                )
        group_columns: List[Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_columns.append(self._parse_expression())
            while self._accept_punct(","):
                group_columns.append(self._parse_expression())
        having = None
        if self._accept_keyword("having"):
            having = self._parse_expression()
        order_items: List[Tuple[Expression, SortDirection]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_items.append(self._parse_order_item())
            while self._accept_punct(","):
                order_items.append(self._parse_order_item())
        fetch_first = self._parse_fetch_first()
        return _Builder(
            catalog=self._catalog,
            from_entries=from_entries,
            raw_items=raw_items,
            predicate=predicate,
            group_columns=group_columns,
            having=having,
            order_items=order_items,
            distinct=distinct,
            fetch_first=fetch_first,
        ).build()

    def _parse_fetch_first(self) -> Optional[int]:
        """``FETCH FIRST n ROWS ONLY`` (DB2's Top-N clause)."""
        if not self._accept_keyword("fetch"):
            return None
        self._expect_keyword("first")
        token = self._next()
        if token.kind is not TokenKind.NUMBER or "." in token.text:
            raise ParseError(
                "FETCH FIRST expects an integer row count",
                token.line,
                token.column,
            )
        count = int(token.text)
        if count < 1:
            raise ParseError(
                "FETCH FIRST requires a positive count",
                token.line,
                token.column,
            )
        if not (self._accept_keyword("rows") or self._accept_keyword("row")):
            raise ParseError(
                "expected ROWS after FETCH FIRST n",
                self._peek().line,
                self._peek().column,
            )
        self._expect_keyword("only")
        return count

    def _parse_select_list(self) -> List[Tuple[Optional[Expression], Optional[str]]]:
        """Items as (expression, alias); (None, None) encodes ``*``."""
        items: List[Tuple[Optional[Expression], Optional[str]]] = []
        if self._peek().kind is TokenKind.OPERATOR and self._peek().text == "*":
            self._next()
            items.append((None, None))
        else:
            items.append(self._parse_select_item())
        while self._accept_punct(","):
            if (
                self._peek().kind is TokenKind.OPERATOR
                and self._peek().text == "*"
            ):
                self._next()
                items.append((None, None))
            else:
                items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> Tuple[Expression, Optional[str]]:
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("as"):
            token = self._next()
            if token.kind is not TokenKind.IDENT:
                raise ParseError(
                    f"expected alias, found {token.text!r}",
                    token.line,
                    token.column,
                )
            alias = token.text
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._next().text
        return expression, alias

    def _parse_from_list(
        self,
    ) -> Tuple[List[_FromEntry], List[Expression]]:
        """FROM entries plus INNER-JOIN ON predicates (folded into WHERE)."""
        entries = [self._parse_from_entry()]
        inner_on: List[Expression] = []
        while True:
            if self._accept_punct(","):
                entries.append(self._parse_from_entry())
                continue
            if self._peek().is_keyword("left"):
                self._next()
                self._accept_keyword("outer")
                self._expect_keyword("join")
                entry = self._parse_from_entry()
                self._expect_keyword("on")
                entry.outer_join_on = self._parse_expression()
                entries.append(entry)
                continue
            if self._peek().is_keyword("inner") or self._peek().is_keyword("join"):
                self._accept_keyword("inner")
                self._expect_keyword("join")
                entries.append(self._parse_from_entry())
                self._expect_keyword("on")
                inner_on.append(self._parse_expression())
                continue
            break
        return entries, inner_on

    def _parse_from_entry(self) -> _FromEntry:
        if self._accept_punct("("):
            subquery = self.parse_statement()  # SELECT or UNION chain
            self._expect_punct(")")
            self._accept_keyword("as")
            token = self._next()
            if token.kind is not TokenKind.IDENT:
                raise ParseError(
                    "subquery in FROM requires an alias",
                    token.line,
                    token.column,
                )
            return _FromEntry(token.text, subquery=subquery)
        token = self._next()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected table name, found {token.text!r}",
                token.line,
                token.column,
            )
        table_name = token.text
        alias = table_name
        if self._accept_keyword("as"):
            alias_token = self._next()
            if alias_token.kind is not TokenKind.IDENT:
                raise ParseError(
                    f"expected alias, found {alias_token.text!r}",
                    alias_token.line,
                    alias_token.column,
                )
            alias = alias_token.text
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._next().text
        return _FromEntry(alias, table_name=table_name)

    def _parse_order_item(self) -> Tuple[Expression, SortDirection]:
        expression = self._parse_expression()
        direction = SortDirection.ASC
        if self._accept_keyword("desc"):
            direction = SortDirection.DESC
        else:
            self._accept_keyword("asc")
        return expression, direction

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr(BooleanOp.OR, tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr(BooleanOp.AND, tuple(operands))

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text in (
            "=",
            "<>",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            self._next()
            text = "<>" if token.text == "!=" else token.text
            right = self._parse_additive()
            return Comparison(ComparisonOp(text), left, right)
        if token.is_keyword("between"):
            self._next()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return BooleanExpr(
                BooleanOp.AND,
                (
                    Comparison(ComparisonOp.GE, left, low),
                    Comparison(ComparisonOp.LE, left, high),
                ),
            )
        if token.is_keyword("in"):
            self._next()
            self._expect_punct("(")
            values = [self._parse_additive()]
            while self._accept_punct(","):
                values.append(self._parse_additive())
            self._expect_punct(")")
            return InList(left, tuple(values))
        if token.is_keyword("is"):
            self._next()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.text in ("+", "-"):
                self._next()
                right = self._parse_multiplicative()
                op = (
                    ArithmeticOp.ADD if token.text == "+" else ArithmeticOp.SUB
                )
                left = Arithmetic(op, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.text in ("*", "/"):
                self._next()
                right = self._parse_unary()
                op = (
                    ArithmeticOp.MUL if token.text == "*" else ArithmeticOp.DIV
                )
                left = Arithmetic(op, left, right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text == "-":
            self._next()
            operand = self._parse_unary()
            return Arithmetic(ArithmeticOp.SUB, Literal(0), operand)
        if token.kind is TokenKind.OPERATOR and token.text == "+":
            self._next()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind is TokenKind.PARAM:
            self._next()
            from repro.expr.nodes import Parameter

            return Parameter(token.text)
        if token.kind is TokenKind.NUMBER:
            self._next()
            if "." in token.text:
                return Literal(decimal.Decimal(token.text))
            return Literal(int(token.text))
        if token.kind is TokenKind.STRING:
            self._next()
            return Literal(token.text)
        if token.is_keyword("null"):
            self._next()
            return Literal(None)
        if token.is_keyword("case"):
            return self._parse_case()
        if self._accept_punct("("):
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if token.kind is TokenKind.IDENT:
            return self._parse_identifier_or_call()
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.column
        )

    def _parse_case(self) -> Expression:
        self._expect_keyword("case")
        self._expect_keyword("when")
        condition = self._parse_expression()
        self._expect_keyword("then")
        then_value = self._parse_expression()
        self._expect_keyword("else")
        else_value = self._parse_expression()
        self._expect_keyword("end")
        return CaseWhen(condition, then_value, else_value)

    def _parse_identifier_or_call(self) -> Expression:
        token = self._next()
        name = token.text
        lowered = name.lower()
        if self._accept_punct("("):
            if lowered in _AGG_KINDS:
                return self._parse_aggregate(_AGG_KINDS[lowered])
            if lowered == "date":
                argument = self._next()
                if argument.kind is not TokenKind.STRING:
                    raise ParseError(
                        "date() expects a string literal",
                        argument.line,
                        argument.column,
                    )
                self._expect_punct(")")
                try:
                    return Literal(datetime.date.fromisoformat(argument.text))
                except ValueError:
                    raise ParseError(
                        f"bad date literal {argument.text!r}",
                        argument.line,
                        argument.column,
                    ) from None
            if lowered in ("year", "month", "day"):
                operand = self._parse_expression()
                self._expect_punct(")")
                return DatePart(lowered, operand)
            raise ParseError(
                f"unknown function {name!r}", token.line, token.column
            )
        if self._accept_punct("."):
            column_token = self._next()
            if column_token.kind is not TokenKind.IDENT:
                raise ParseError(
                    f"expected column after {name}.",
                    column_token.line,
                    column_token.column,
                )
            return ColumnRef(name, column_token.text)
        return ColumnRef(_UNRESOLVED, name)

    def _parse_aggregate(self, kind: AggregateKind) -> Expression:
        distinct = self._accept_keyword("distinct")
        token = self._peek()
        if (
            kind is AggregateKind.COUNT
            and token.kind is TokenKind.OPERATOR
            and token.text == "*"
        ):
            self._next()
            self._expect_punct(")")
            return Aggregate(kind, None, distinct)
        argument = self._parse_expression()
        self._expect_punct(")")
        return Aggregate(kind, argument, distinct)


class _Builder:
    """Resolves names and assembles the QGM box tree."""

    def __init__(
        self,
        catalog: Catalog,
        from_entries: List[_FromEntry],
        raw_items: List[Tuple[Optional[Expression], Optional[str]]],
        predicate: Optional[Expression],
        group_columns: List[Expression],
        having: Optional[Expression],
        order_items: List[Tuple[Expression, SortDirection]],
        distinct: bool,
        fetch_first: Optional[int] = None,
    ):
        self.catalog = catalog
        self.from_entries = from_entries
        self.raw_items = raw_items
        self.predicate = predicate
        self.group_columns = group_columns
        self.having = having
        self.order_items = order_items
        self.distinct = distinct
        self.fetch_first = fetch_first
        self._columns_by_alias: Dict[str, List[str]] = {}
        self._quantifiers: Dict[str, Quantifier] = {}

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def _register_sources(self) -> None:
        for entry in self.from_entries:
            if entry.alias in self._columns_by_alias:
                raise ParseError(f"duplicate alias {entry.alias!r}")
            if entry.table_name is not None:
                table = self.catalog.table(entry.table_name)
                self._columns_by_alias[entry.alias] = table.column_names
                self._quantifiers[entry.alias] = BaseTableQuantifier(
                    entry.alias, table.name
                )
            else:
                names = [item.name for item in entry.subquery.output_items()]
                self._columns_by_alias[entry.alias] = names
                self._quantifiers[entry.alias] = BoxQuantifier(
                    entry.alias, entry.subquery
                )

    def _resolve(self, expression: Expression) -> Expression:
        def visit(node: Expression) -> Optional[Expression]:
            if not isinstance(node, ColumnRef):
                return None
            if node.qualifier == _UNRESOLVED:
                matches = [
                    alias
                    for alias, names in self._columns_by_alias.items()
                    if node.name in names
                ]
                if len(matches) == 1:
                    return ColumnRef(matches[0], node.name)
                if not matches:
                    raise ParseError(f"unknown column {node.name!r}")
                raise ParseError(
                    f"ambiguous column {node.name!r} "
                    f"(matches {sorted(matches)})"
                )
            names = self._columns_by_alias.get(node.qualifier)
            if names is None:
                raise ParseError(f"unknown alias {node.qualifier!r}")
            if node.name not in names:
                raise ParseError(
                    f"no column {node.name!r} in {node.qualifier!r}"
                )
            return None

        return transform(expression, visit)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def build(self) -> Box:
        self._register_sources()
        items = self._resolved_select_items()
        predicate = (
            self._resolve(self.predicate) if self.predicate is not None else None
        )
        outer_joins = {
            entry.alias: self._resolve(entry.outer_join_on)
            for entry in self.from_entries
            if entry.outer_join_on is not None
        }
        group_columns = [
            self._require_column(self._resolve(expression), "GROUP BY")
            for expression in self.group_columns
        ]
        having = (
            self._resolve(self.having) if self.having is not None else None
        )

        aggregates: List[Tuple[str, Aggregate]] = []
        final_items: List[SelectItem] = []
        for expression, name in items:
            preferred = name if isinstance(expression, Aggregate) else None
            rewritten = self._extract_aggregates(
                expression, aggregates, preferred
            )
            final_items.append(SelectItem(rewritten, name))
        if having is not None:
            having = self._extract_aggregates(having, aggregates)

        has_grouping = bool(group_columns) or bool(aggregates)
        order_by = self._resolve_order(final_items, aggregates)

        quantifier_list = [
            self._quantifiers[entry.alias] for entry in self.from_entries
        ]
        if not has_grouping:
            box = SelectBox(
                quantifier_list,
                final_items,
                predicate=predicate,
                distinct=self.distinct,
                outer_joins=outer_joins,
            )
            box.output_order = order_by
            box.fetch_first = self.fetch_first
            return box

        needed = self._core_columns(
            final_items, predicate, group_columns, aggregates, having, order_by
        )
        core = SelectBox(
            quantifier_list,
            [SelectItem(column, column.name) for column in needed],
            predicate=predicate,
            outer_joins=outer_joins,
        )
        group_box = GroupByBox(
            BoxQuantifier("q$core", core), group_columns, aggregates
        )
        top = SelectBox(
            [BoxQuantifier("q$group", group_box)],
            final_items,
            predicate=having,
            distinct=self.distinct,
        )
        top.output_order = order_by
        top.fetch_first = self.fetch_first
        return top

    def _resolved_select_items(
        self,
    ) -> List[Tuple[Expression, str]]:
        resolved: List[Tuple[Expression, str]] = []
        used_names: Set[str] = set()
        counter = 0
        for expression, alias in self.raw_items:
            if expression is None:
                # ``*`` expansion, in FROM order.
                for entry in self.from_entries:
                    for name in self._columns_by_alias[entry.alias]:
                        resolved.append(
                            (ColumnRef(entry.alias, name), name)
                        )
                        used_names.add(name)
                continue
            expression = self._resolve(expression)
            if alias is None:
                if isinstance(expression, ColumnRef):
                    alias = expression.name
                else:
                    counter += 1
                    alias = f"expr{counter}"
            resolved.append((expression, alias))
            used_names.add(alias)
        return resolved

    def _require_column(
        self, expression: Expression, clause: str
    ) -> ColumnRef:
        if isinstance(expression, ColumnRef):
            return expression
        raise ParseError(f"{clause} supports plain columns only")

    def _extract_aggregates(
        self,
        expression: Expression,
        aggregates: List[Tuple[str, Aggregate]],
        preferred_name: Optional[str] = None,
    ) -> Expression:
        """Replace Aggregate nodes with references to computed outputs."""
        taken = {name for name, _aggregate in aggregates}

        def visit(node: Expression) -> Optional[Expression]:
            if not isinstance(node, Aggregate):
                return None
            for name, existing in aggregates:
                if existing == node:
                    return ColumnRef("", name)
            if preferred_name and preferred_name not in taken:
                name = preferred_name
            else:
                name = f"agg{len(aggregates) + 1}"
            taken.add(name)
            aggregates.append((name, node))
            return ColumnRef("", name)

        return transform(expression, visit)

    def _resolve_order(
        self,
        final_items: List[SelectItem],
        aggregates: List[Tuple[str, Aggregate]],
    ) -> OrderSpec:
        keys: List[OrderKey] = []
        by_alias = {item.name: item for item in final_items}
        for expression, direction in self.order_items:
            if isinstance(expression, Literal) and isinstance(
                expression.value, int
            ):
                position = expression.value
                if not 1 <= position <= len(final_items):
                    raise ParseError(f"ORDER BY position {position} out of range")
                target = final_items[position - 1].output
            elif (
                isinstance(expression, ColumnRef)
                and expression.qualifier == _UNRESOLVED
                and expression.name in by_alias
            ):
                target = by_alias[expression.name].output
            else:
                resolved = self._resolve(expression)
                if not isinstance(resolved, ColumnRef):
                    raise ParseError(
                        "ORDER BY supports columns, aliases, and positions"
                    )
                target = resolved
            keys.append(OrderKey(target, direction))
        return OrderSpec(keys)

    def _core_columns(
        self,
        final_items: List[SelectItem],
        predicate: Optional[Expression],
        group_columns: List[ColumnRef],
        aggregates: List[Tuple[str, Aggregate]],
        having: Optional[Expression],
        order_by: OrderSpec,
    ) -> List[ColumnRef]:
        """Base columns the core box must expose for the pipeline above."""
        needed: List[ColumnRef] = []

        def note(column: ColumnRef) -> None:
            if column.qualifier and column not in needed:
                needed.append(column)

        for column in group_columns:
            note(column)
        for _name, aggregate in aggregates:
            if aggregate.argument is not None:
                for column in sorted(
                    columns_of(aggregate.argument),
                    key=lambda c: (c.qualifier, c.name),
                ):
                    note(column)
        for item in final_items:
            for column in sorted(
                columns_of(item.expression),
                key=lambda c: (c.qualifier, c.name),
            ):
                note(column)
        if having is not None:
            for column in sorted(
                columns_of(having), key=lambda c: (c.qualifier, c.name)
            ):
                note(column)
        for key in order_by:
            note(key.column)
        return needed
