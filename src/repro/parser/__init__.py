"""A small SQL parser for the dialect the paper's queries use.

Supported grammar (case-insensitive keywords):

    SELECT [DISTINCT] item [, item]...
    FROM table [alias] [, table [alias]]... | (subquery) alias
    [WHERE predicate]
    [GROUP BY column [, column]...]
    [HAVING predicate]
    [ORDER BY item [ASC|DESC] [, ...]]

with literals (numbers, strings, ``date('YYYY-MM-DD')``, NULL),
arithmetic, comparisons, BETWEEN/IN/IS NULL, AND/OR/NOT, and the
aggregates SUM/COUNT/MIN/MAX/AVG (optionally DISTINCT).

:func:`parse_query` returns a QGM box tree resolved against a catalog.
"""

from repro.parser.lexer import Token, TokenKind, tokenize
from repro.parser.parser import parse_query

__all__ = ["Token", "TokenKind", "tokenize", "parse_query"]
