"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Column, Database, Index, TableSchema
from repro.sqltypes import DATE, INTEGER, decimal_type, varchar


@pytest.fixture
def empty_db() -> Database:
    return Database()


@pytest.fixture(scope="session")
def simple_db() -> Database:
    """Two joinable tables, large enough that index orders pay off.

    Session-scoped and treated as read-only by tests.
    """
    rng = random.Random(42)
    db = Database()
    db.create_table(
        TableSchema(
            "a",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, rng.randint(0, 9)) for i in range(5000)],
    )
    db.create_table(
        TableSchema(
            "b",
            [Column("x", INTEGER, nullable=False), Column("z", INTEGER)],
        ),
        rows=[(rng.randint(0, 4999), rng.randint(0, 99)) for _ in range(8000)],
    )
    db.create_index(Index.on("a_x", "a", ["x"], unique=True, clustered=True))
    db.create_index(Index.on("b_x", "b", ["x"], clustered=True))
    return db


@pytest.fixture(scope="session")
def warehouse_db() -> Database:
    """A three-table star-ish schema used by plan-shape tests.

    Session-scoped and treated as read-only by tests.
    """
    rng = random.Random(7)
    db = Database()
    db.create_table(
        TableSchema(
            "dim",
            [
                Column("k", INTEGER, nullable=False),
                Column("attr", INTEGER),
                Column("grp", varchar(10)),
            ],
            primary_key=("k",),
        ),
        rows=[
            (i, rng.randint(0, 30), f"g{i % 5}") for i in range(1000)
        ],
    )
    db.create_table(
        TableSchema(
            "fact",
            [
                Column("k", INTEGER, nullable=False),
                Column("d", INTEGER, nullable=False),
                Column("v", INTEGER),
            ],
        ),
        rows=[
            (rng.randint(0, 999), rng.randint(0, 49), rng.randint(0, 1000))
            for _ in range(8000)
        ],
    )
    db.create_table(
        TableSchema(
            "detail",
            [
                Column("d", INTEGER, nullable=False),
                Column("w", INTEGER),
            ],
        ),
        rows=[
            (rng.randint(0, 49), rng.randint(0, 10)) for _ in range(2000)
        ],
    )
    db.create_index(Index.on("dim_k", "dim", ["k"], unique=True, clustered=True))
    db.create_index(Index.on("fact_k", "fact", ["k"], clustered=True))
    db.create_index(Index.on("detail_d", "detail", ["d"], clustered=True))
    return db


@pytest.fixture(scope="session")
def tpcd_db():
    """A tiny TPC-D database shared across the session (SF 0.002)."""
    from repro.tpcd import build_tpcd_database

    return build_tpcd_database(scale_factor=0.002, buffer_pool_pages=2048)
