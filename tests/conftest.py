"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import Column, Database, Index, TableSchema
from repro.catalog import hash_spec, range_spec
from repro.sqltypes import DATE, INTEGER, decimal_type, varchar


@pytest.fixture(autouse=True)
def no_leaked_exchange_workers():
    """Exchange teardown must join every ``repro-exch-*`` worker.

    The exchange operators promise no stranded partition workers on any
    exit path — success, error, cancellation, or an abandoned
    generator. This suite-wide guard fails any test that returns while
    one is still alive (a short grace window absorbs threads mid-exit).
    """
    yield
    deadline = time.monotonic() + 5.0
    while True:
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread.name.startswith("repro-exch-") and thread.is_alive()
        ]
        if not leaked:
            return
        if time.monotonic() > deadline:
            pytest.fail(
                "exchange worker threads leaked past the test: "
                + ", ".join(thread.name for thread in leaked)
            )
        time.sleep(0.01)


@pytest.fixture
def empty_db() -> Database:
    return Database()


@pytest.fixture(scope="session")
def simple_db() -> Database:
    """Two joinable tables, large enough that index orders pay off.

    Session-scoped and treated as read-only by tests.
    """
    rng = random.Random(42)
    db = Database()
    db.create_table(
        TableSchema(
            "a",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, rng.randint(0, 9)) for i in range(5000)],
    )
    db.create_table(
        TableSchema(
            "b",
            [Column("x", INTEGER, nullable=False), Column("z", INTEGER)],
        ),
        rows=[(rng.randint(0, 4999), rng.randint(0, 99)) for _ in range(8000)],
    )
    db.create_index(Index.on("a_x", "a", ["x"], unique=True, clustered=True))
    db.create_index(Index.on("b_x", "b", ["x"], clustered=True))
    return db


@pytest.fixture(scope="session")
def warehouse_db() -> Database:
    """A three-table star-ish schema used by plan-shape tests.

    Session-scoped and treated as read-only by tests.
    """
    rng = random.Random(7)
    db = Database()
    db.create_table(
        TableSchema(
            "dim",
            [
                Column("k", INTEGER, nullable=False),
                Column("attr", INTEGER),
                Column("grp", varchar(10)),
            ],
            primary_key=("k",),
        ),
        rows=[
            (i, rng.randint(0, 30), f"g{i % 5}") for i in range(1000)
        ],
    )
    db.create_table(
        TableSchema(
            "fact",
            [
                Column("k", INTEGER, nullable=False),
                Column("d", INTEGER, nullable=False),
                Column("v", INTEGER),
            ],
        ),
        rows=[
            (rng.randint(0, 999), rng.randint(0, 49), rng.randint(0, 1000))
            for _ in range(8000)
        ],
    )
    db.create_table(
        TableSchema(
            "detail",
            [
                Column("d", INTEGER, nullable=False),
                Column("w", INTEGER),
            ],
        ),
        rows=[
            (rng.randint(0, 49), rng.randint(0, 10)) for _ in range(2000)
        ],
    )
    db.create_index(Index.on("dim_k", "dim", ["k"], unique=True, clustered=True))
    db.create_index(Index.on("fact_k", "fact", ["k"], clustered=True))
    db.create_index(Index.on("detail_d", "detail", ["d"], clustered=True))
    return db


@pytest.fixture(scope="session")
def partitioned_db() -> Database:
    """Partitioned tables for exchange/parallel-plan tests.

    ``orders`` is range-partitioned on ``odate`` with a clustered
    per-partition (local) index on it — the shape that lets a merge
    exchange deliver ``ORDER BY odate`` with zero sorts. ``lineitem``
    and ``orders2`` are hash-co-partitioned on ``okey`` for
    partition-wise joins; ``cust`` stays unpartitioned.
    Session-scoped and treated as read-only by tests.
    """
    rng = random.Random(7)
    db = Database()
    db.create_table(
        TableSchema(
            "orders",
            [
                Column("okey", INTEGER, nullable=False),
                Column("custkey", INTEGER, nullable=False),
                Column("total", INTEGER, nullable=False),
                Column("odate", INTEGER, nullable=False),
            ],
            primary_key=("okey",),
            partitioning=range_spec(["odate"], [250, 500, 750]),
        ),
        rows=[
            (i, rng.randrange(100), rng.randrange(10_000), rng.randrange(1000))
            for i in range(2000)
        ],
    )
    db.create_index(
        Index.on("orders_odate", "orders", ("odate",), clustered=True)
    )
    db.create_table(
        TableSchema(
            "cust",
            [
                Column("custkey", INTEGER, nullable=False),
                Column("name", varchar(20), nullable=False),
                Column("nation", INTEGER, nullable=False),
            ],
            primary_key=("custkey",),
        ),
        rows=[(i, f"c{i}", rng.randrange(25)) for i in range(100)],
    )
    db.create_table(
        TableSchema(
            "lineitem",
            [
                Column("okey", INTEGER, nullable=False),
                Column("lnum", INTEGER, nullable=False),
                Column("qty", INTEGER, nullable=False),
            ],
            primary_key=("okey", "lnum"),
            partitioning=hash_spec(["okey"], 4),
        ),
        rows=[
            (o, line, rng.randrange(50))
            for o in range(2000)
            for line in range(rng.randrange(1, 4))
        ],
    )
    db.create_table(
        TableSchema(
            "orders2",
            [
                Column("okey", INTEGER, nullable=False),
                Column("pri", INTEGER, nullable=False),
            ],
            primary_key=("okey",),
            partitioning=hash_spec(["okey"], 4),
        ),
        rows=[(i, rng.randrange(5)) for i in range(2000)],
    )
    db.analyze_all()
    return db


@pytest.fixture(scope="session")
def tpcd_db():
    """A tiny TPC-D database shared across the session (SF 0.002)."""
    from repro.tpcd import build_tpcd_database

    return build_tpcd_database(scale_factor=0.002, buffer_pool_pages=2048)
