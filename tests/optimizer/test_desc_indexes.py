"""Descending and mixed-direction index orders."""

import random

import pytest

from repro import (
    Column,
    Database,
    Index,
    IndexColumn,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.core.ordering import SortDirection
from repro.optimizer.plan import OpKind
from repro.sqltypes import INTEGER


@pytest.fixture(scope="module")
def db():
    rng = random.Random(13)
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [
                Column("k", INTEGER, nullable=False),
                Column("a", INTEGER, nullable=False),
                Column("b", INTEGER),
            ],
            primary_key=("k",),
        ),
        rows=[
            (i, rng.randint(0, 99), rng.randint(0, 99)) for i in range(5000)
        ],
    )
    database.create_index(Index.on("t_k", "t", ["k"], unique=True, clustered=True))
    # A declared-descending index on a, then ascending b.
    database.create_index(
        Index(
            "t_a_desc_b",
            "t",
            [IndexColumn("a", SortDirection.DESC), IndexColumn("b")],
        )
    )
    return database


class TestDescendingIndexes:
    def test_declared_desc_order_spec(self, db):
        index = db.catalog.index("t_a_desc_b")
        spec = index.order_spec("t")
        assert spec[0].direction is SortDirection.DESC
        assert spec[1].direction is SortDirection.ASC

    def test_index_scan_yields_declared_order(self, db):
        result = run_query(
            db, "select a, b from t where a > 90 order by a desc, b"
        )
        keys = [(-row[0], row[1]) for row in result.rows]
        assert keys == sorted(keys)

    def test_backward_scan_of_key_index(self, db):
        """ORDER BY k DESC rides the ascending key index backwards."""
        result = run_query(db, "select k from t order by k desc")
        assert result.plan.sort_count() == 0
        scans = result.plan.find_all(OpKind.INDEX_SCAN)
        assert any(scan.args.get("descending") for scan in scans)
        values = [row[0] for row in result.rows]
        assert values == sorted(values, reverse=True)

    def test_backward_scan_reverses_whole_spec(self, db):
        """ORDER BY a, b desc is the reversal of the (a desc, b) index."""
        result = run_query(
            db,
            "select a, b from t order by a, b desc",
            config=OptimizerConfig(enable_hash_join=False),
        )
        keys = [(row[0], -(row[1] if row[1] is not None else -1)) for row in result.rows]
        assert keys == sorted(keys)

    def test_mixed_direction_results_correct(self, db):
        result = run_query(db, "select a, b, k from t order by a desc, b, k")
        triples = [(-row[0], row[1], row[2]) for row in result.rows]
        assert triples == sorted(triples)
        assert len(result.rows) == 5000
