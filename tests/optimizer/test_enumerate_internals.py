"""Join-enumeration internals: pruning, equi-pair handling, helpers."""

import pytest

from repro import Column, Database, Index, OptimizerConfig, TableSchema
from repro.core import OrderContext, OrderSpec
from repro.core.general import GeneralOrderSpec
from repro.core.ordering import desc
from repro.cost.model import Cost, CostModel
from repro.expr import Comparison, ComparisonOp, RowSchema, col, lit
from repro.optimizer.enumerate import (
    _dedupe_pairs,
    _equi_pairs,
    _prune,
    enumerate_joins,
)
from repro.optimizer.helpers import (
    general_satisfies,
    general_sort_target,
    order_satisfies,
    sort_columns_for,
)
from repro.optimizer.plan import OpKind, PlanNode
from repro.optimizer.planner import PlannerContext
from repro.properties.stream import StreamProperties
from repro.qgm.block import QueryBlock
from repro.qgm.boxes import SelectItem
from repro.sqltypes import INTEGER

AX, AY, BX, BY = col("a", "x"), col("a", "y"), col("b", "x"), col("b", "y")


def EQ(left, right):
    return Comparison(ComparisonOp.EQ, left, right)


class TestEquiPairs:
    def test_orientation(self):
        pairs = _equi_pairs(
            [EQ(BX, AX)], frozenset([AX, AY]), frozenset([BX, BY])
        )
        assert pairs == [(AX, BX, EQ(BX, AX))]

    def test_non_equi_ignored(self):
        pred = Comparison(ComparisonOp.LT, AX, BX)
        assert _equi_pairs([pred], frozenset([AX]), frozenset([BX])) == []

    def test_same_side_equality_ignored(self):
        assert (
            _equi_pairs([EQ(AX, AY)], frozenset([AX, AY]), frozenset([BX]))
            == []
        )

    def test_dedupe_keeps_first_per_column(self):
        pairs = [
            (AX, BX, EQ(AX, BX)),
            (AY, BX, EQ(AY, BX)),  # same inner column
            (AX, BY, EQ(AX, BY)),  # same outer column
        ]
        unique = _dedupe_pairs(pairs)
        assert unique == [pairs[0]]


def _fake_plan(cost_ms, order=OrderSpec()):
    properties = StreamProperties(
        schema=RowSchema([AX, AY]), order=order, cardinality=10.0
    )
    return PlanNode(
        OpKind.TABLE_SCAN,
        (),
        properties,
        Cost(cpu_ms=cost_ms),
        {"table": "a", "alias": "a"},
    )


def _planner(db=None):
    database = db or Database()
    if not database.catalog.has_table("a"):
        database.create_table(
            TableSchema(
                "a",
                [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
                primary_key=("x",),
            ),
            rows=[(i, i % 3) for i in range(10)],
        )
    block = QueryBlock(
        tables={"a": "a"},
        predicate=None,
        select_items=[SelectItem(AX, "x")],
    )
    return PlannerContext.build(database, OptimizerConfig(), block)


class TestPrune:
    def test_cheaper_unordered_dominates_unordered(self):
        planner = _planner()
        cheap = _fake_plan(1.0)
        pricey = _fake_plan(5.0)
        survivors = _prune(planner, [pricey, cheap])
        assert survivors == [cheap]

    def test_ordered_plan_survives_cheaper_unordered(self):
        planner = _planner()
        cheap = _fake_plan(1.0)
        ordered = _fake_plan(5.0, OrderSpec.of(AX))
        survivors = _prune(planner, [ordered, cheap])
        assert set(map(id, survivors)) == {id(cheap), id(ordered)}

    def test_ordered_dominates_weaker_order(self):
        planner = _planner()
        strong = _fake_plan(1.0, OrderSpec.of(AX, AY))
        weak = _fake_plan(2.0, OrderSpec.of(AX))
        survivors = _prune(planner, [weak, strong])
        assert survivors == [strong]

    def test_result_sorted_by_cost(self):
        planner = _planner()
        plans = [
            _fake_plan(3.0, OrderSpec.of(AY)),
            _fake_plan(1.0),
            _fake_plan(2.0, OrderSpec.of(AX)),
        ]
        survivors = _prune(planner, plans)
        costs = [plan.cost.total_ms for plan in survivors]
        assert costs == sorted(costs)


class TestCartesianFallback:
    def test_disconnected_tables_still_plan(self):
        database = Database()
        for name in ("p", "q"):
            database.create_table(
                TableSchema(
                    name,
                    [Column("v", INTEGER, nullable=False)],
                    primary_key=("v",),
                ),
                rows=[(i,) for i in range(5)],
            )
        block = QueryBlock(
            tables={"p": "p", "q": "q"},
            predicate=None,
            select_items=[
                SelectItem(col("p", "v"), "pv"),
                SelectItem(col("q", "v"), "qv"),
            ],
        )
        planner = PlannerContext.build(database, OptimizerConfig(), block)
        plans = enumerate_joins(planner)
        assert plans
        assert plans[0].properties.cardinality == 25.0


class TestHelpers:
    def test_order_satisfies_gated_by_master_switch(self):
        context = OrderContext.empty().with_constant(AX)
        interesting = OrderSpec.of(AX, AY)
        order_property = OrderSpec.of(AY)
        assert order_satisfies(
            OptimizerConfig(), interesting, order_property, context
        )
        assert not order_satisfies(
            OptimizerConfig.disabled(), interesting, order_property, context
        )

    def test_sort_columns_reduced_only_when_enabled(self):
        context = OrderContext.empty().with_constant(AX)
        interesting = OrderSpec.of(AX, AY)
        assert sort_columns_for(
            OptimizerConfig(), interesting, context
        ) == OrderSpec.of(AY)
        assert sort_columns_for(
            OptimizerConfig.disabled(), interesting, context
        ) == interesting

    def test_general_satisfies_rigid_fallback(self):
        general = GeneralOrderSpec.from_group_by([AY, AX])
        context = OrderContext.empty()
        permuted = OrderSpec.of(AY, AX)
        assert general_satisfies(OptimizerConfig(), general, permuted, context)
        # Rigid mode demands the lexicographic rendering of the free
        # segment, so the permuted property may fail.
        rigid_target = general_sort_target(
            OptimizerConfig.disabled(), general, context
        )
        assert rigid_target == OrderSpec.of(AX, AY)
