"""Prefix-aware partial sort in plans: enforcement and segment sharing.

The optimizer must (a) turn a sort whose target's proper prefix is
already delivered into a PARTIAL_SORT, (b) keep the naive builds
honest (no partial sorts under ``disabled()`` or the feature toggle),
and (c) steer merge-join key sequences toward reusing delivered
prefixes (shared sort segments).
"""

import pytest

from repro import Column, Database, Index, OptimizerConfig, TableSchema
from repro import plan_query
from repro.api import run_query
from repro.optimizer.plan import OpKind
from repro.sqltypes import INTEGER


def merge_only_config(**overrides):
    """Merge joins only: forces order enforcement to carry the plan."""
    config = OptimizerConfig(
        enable_hash_join=False,
        enable_hash_group_by=False,
        enable_index_nlj=False,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestPartialSortEnforcement:
    # b has a clustered index on x but no key: ORDER BY x, z keeps both
    # columns after reduction, the scan delivers the x prefix, and the
    # enforcement sort only needs to order z within x-groups.
    SQL = "select x, z from b order by x, z"

    def test_prefix_sort_becomes_partial(self, simple_db):
        plan = plan_query(simple_db, self.SQL)
        assert plan.partial_sort_count() == 1
        assert plan.sort_count() == 0
        node = plan.find_all(OpKind.PARTIAL_SORT)[0]
        assert node.args["prefix"] == 1
        assert len(node.args["order"]) == 2
        assert "partial sort" in plan.explain()

    def test_feature_toggle_restores_full_sort(self, simple_db):
        plan = plan_query(
            simple_db,
            self.SQL,
            config=OptimizerConfig(enable_partial_sort=False),
        )
        assert plan.partial_sort_count() == 0

    def test_disabled_build_never_partial_sorts(self, simple_db):
        plan = plan_query(
            simple_db, self.SQL, config=OptimizerConfig.disabled()
        )
        assert plan.partial_sort_count() == 0

    def test_partial_sort_cheaper_than_full_sort(self, simple_db):
        partial = plan_query(simple_db, self.SQL)
        full = plan_query(
            simple_db,
            self.SQL,
            config=OptimizerConfig(enable_partial_sort=False),
        )
        assert partial.cost.total_ms < full.cost.total_ms

    def test_rows_identical_with_and_without(self, simple_db):
        with_partial = run_query(simple_db, self.SQL)
        without = run_query(
            simple_db,
            self.SQL,
            config=OptimizerConfig(enable_partial_sort=False),
        )
        assert with_partial.rows == without.rows

    def test_limit_rides_the_partial_sort(self, simple_db):
        plan = plan_query(
            simple_db, self.SQL + " fetch first 10 rows only"
        )
        nodes = plan.find_all(OpKind.PARTIAL_SORT)
        assert nodes and nodes[0].args.get("limit") == 10
        assert not plan.find_all(OpKind.TOPN)
        limited = run_query(simple_db, self.SQL + " fetch first 10 rows only")
        full = run_query(
            simple_db,
            self.SQL + " fetch first 10 rows only",
            config=OptimizerConfig(enable_partial_sort=False),
        )
        assert limited.rows == full.rows


@pytest.fixture(scope="module")
def segment_db() -> Database:
    """Two merge joins sharing the leading column ``x``.

    ``r`` joins ``s`` on (x, y) and ``t2`` on (x, w): a plan that sorts
    the r-s result on (w, x) pays a full sort, while the segment-aligned
    (x, w) sequence reuses the (x, y...) order the first join delivered.
    """
    import random

    rng = random.Random(11)
    db = Database()
    db.create_table(
        TableSchema(
            "r",
            [
                Column("id", INTEGER, nullable=False),
                Column("x", INTEGER, nullable=False),
                Column("y", INTEGER, nullable=False),
                Column("w", INTEGER, nullable=False),
            ],
            primary_key=("id",),
        ),
        rows=[
            (i, rng.randint(0, 40), rng.randint(0, 10), rng.randint(0, 10))
            for i in range(2000)
        ],
    )
    db.create_table(
        TableSchema(
            "s",
            [
                Column("x", INTEGER, nullable=False),
                Column("y", INTEGER, nullable=False),
            ],
        ),
        rows=[
            (rng.randint(0, 40), rng.randint(0, 10)) for _ in range(500)
        ],
    )
    db.create_table(
        TableSchema(
            "t2",
            [
                Column("x", INTEGER, nullable=False),
                Column("w", INTEGER, nullable=False),
            ],
        ),
        rows=[
            (rng.randint(0, 40), rng.randint(0, 10)) for _ in range(500)
        ],
    )
    return db


class TestSharedSortSegments:
    # The t2 join's conjuncts are written w-first, so the unaligned key
    # sequence is (w, x); only segment alignment recovers the shared x
    # prefix.
    SQL = (
        "select r.id from r, s, t2 "
        "where r.x = s.x and r.y = s.y "
        "and r.w = t2.w and r.x = t2.x "
        "order by r.id"
    )

    def test_alignment_strictly_reduces_full_sorts(self, segment_db):
        aligned = plan_query(
            segment_db, self.SQL, config=merge_only_config()
        )
        unaligned = plan_query(
            segment_db,
            self.SQL,
            config=merge_only_config(enable_partial_sort=False),
        )
        assert aligned.sort_count() < unaligned.sort_count()
        assert aligned.partial_sort_count() >= 1

    def test_rows_identical_across_alignment(self, segment_db):
        aligned = run_query(segment_db, self.SQL, config=merge_only_config())
        unaligned = run_query(
            segment_db,
            self.SQL,
            config=merge_only_config(enable_partial_sort=False),
        )
        assert aligned.rows == unaligned.rows
