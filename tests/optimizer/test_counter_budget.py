"""Counter-budget regression: TPC-D Q3 planning work stays bounded.

The memoized algebra removed quadratic closure recomputation from the
planner's inner loop. This test pins the amount of work Q3 planning may
perform — closure fixpoint iterations, algebra front-door calls, context
builds — to fixed budgets (measured values with roughly 2x headroom), so
a regression that silently reintroduces repeated recomputation fails
loudly instead of just showing up as slower benchmarks.

Budgets were measured at SF 0.002 (the session fixture scale); planning
work depends on catalog shape and statistics, not row count, so they are
stable across small scale factors.
"""

import pytest

from repro.api import plan_query
from repro.bench.experiments import db2_faithful_config
from repro.core import clear_memos, instrument
from repro.properties.propagate import clear_propagation_memo
from repro.tpcd import QUERY_3

# Measured at SF 0.002 after the memoization work:
#   closure.builds 192, closure.iterations 505, reduce.calls 359,
#   test.calls 503, cover.calls 98, context.builds 263,
#   propagate.join_calls 186, stream.context_calls 575.
BUDGETS = {
    "closure.builds": 400,
    "closure.iterations": 1100,
    "reduce.calls": 750,
    "test.calls": 1000,
    "cover.calls": 220,
    "context.builds": 550,
    "propagate.join_calls": 400,
    "stream.context_calls": 1200,
}


@pytest.fixture()
def q3_counters(tpcd_db):
    # Deterministic baseline: cross-run memo state changes which code
    # paths execute (a propagate_join hit skips context assembly), so
    # every cache is cleared before the measured planning run.
    clear_memos()
    clear_propagation_memo()
    instrument.reset()
    plan = plan_query(tpcd_db, QUERY_3, config=db2_faithful_config(True))
    assert plan is not None
    stats = instrument.snapshot()
    clear_memos()
    clear_propagation_memo()
    return stats


def test_q3_planning_stays_within_counter_budgets(q3_counters):
    over = {
        name: (q3_counters.get(name, 0), budget)
        for name, budget in BUDGETS.items()
        if q3_counters.get(name, 0) > budget
    }
    assert not over, f"counter budgets exceeded (actual, budget): {over}"


def test_q3_planning_actually_exercises_the_algebra(q3_counters):
    # Guards the budget test against vacuous passes: if instrumentation
    # or the planning entry point stops counting, budgets trivially hold.
    assert q3_counters.get("reduce.calls", 0) > 50
    assert q3_counters.get("closure.builds", 0) > 20
    assert q3_counters.get("propagate.join_calls", 0) > 20


def test_q3_planning_memo_hit_rate_above_half(q3_counters):
    calls = sum(
        q3_counters.get(f"{subsystem}.calls", 0)
        for subsystem in ("reduce", "test", "cover", "homogenize")
    )
    hits = sum(
        q3_counters.get(f"{subsystem}.memo_hits", 0)
        for subsystem in ("reduce", "test", "cover", "homogenize")
    )
    assert calls > 0
    assert hits / calls > 0.5
