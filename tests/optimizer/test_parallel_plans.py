"""Plan shapes for the partitioning subsystem.

The pinned acceptance plan: a range-partitioned table with a clustered
local index satisfies ORDER BY through a merge exchange with **zero**
sorts, while the no-partitioning build pays a full sort for the same
query — and both return byte-identical rows.
"""

import pytest

from repro.api import execute, plan_query, run_query
from repro.bench.experiments import db2_faithful_config
from repro.expr.nodes import ColumnRef
from repro.optimizer import OptimizerConfig
from repro.optimizer.plan import OpKind

PARALLEL_KINDS = (
    OpKind.PARTITION_SCAN,
    OpKind.GATHER_EXCHANGE,
    OpKind.MERGE_EXCHANGE,
    OpKind.PARTITION_SPLIT,
)


def _no_partitioning():
    config = OptimizerConfig()
    config.enable_partitioning = False
    return config


class TestPinnedMergeExchangePlan:
    SQL = "select okey, odate from orders order by odate"

    def test_merge_exchange_avoids_the_sort(self, partitioned_db):
        plan = plan_query(partitioned_db, self.SQL, config=OptimizerConfig())
        merges = plan.find_all(OpKind.MERGE_EXCHANGE)
        assert merges, plan.explain()
        assert plan.sort_count() == 0
        assert plan.partial_sort_count() == 0
        # Each merged stream is a per-partition (local) index scan.
        scans = merges[0].children
        assert len(scans) == 4
        assert all(child.kind is OpKind.INDEX_SCAN for child in scans)
        assert sorted(child.args["partition"] for child in scans) == [
            0,
            1,
            2,
            3,
        ]

    def test_no_partitioning_build_pays_a_sort(self, partitioned_db):
        baseline = plan_query(
            partitioned_db, self.SQL, config=_no_partitioning()
        )
        assert baseline.sort_count() >= 1
        for kind in PARALLEL_KINDS:
            assert not baseline.find_all(kind)
        merged = run_query(partitioned_db, self.SQL)
        assert merged.plan.sort_count() == 0
        assert merged.rows == execute(partitioned_db, baseline).rows

    def test_partial_sort_composes_over_merge_exchange(self, partitioned_db):
        # PR 8's composition: the merge delivers the odate prefix, so a
        # secondary key costs a segmented partial sort, not a full sort.
        plan = plan_query(
            partitioned_db,
            "select okey, odate from orders order by odate, okey",
            config=OptimizerConfig(),
        )
        assert plan.find_all(OpKind.MERGE_EXCHANGE), plan.explain()
        assert plan.sort_count() == 0
        assert plan.partial_sort_count() == 1


class TestPartitionPruning:
    def test_equality_prunes_to_one_partition(self, partitioned_db):
        plan = plan_query(
            partitioned_db,
            "select okey from orders where odate = 300",
        )
        scans = plan.find_all(OpKind.PARTITION_SCAN)
        assert scans, plan.explain()
        assert scans[0].args["partitions"] == (1,)
        assert not plan.find_all(OpKind.GATHER_EXCHANGE)

    def test_range_predicate_prunes_to_intersecting_partitions(
        self, partitioned_db
    ):
        plan = plan_query(
            partitioned_db,
            "select okey from orders where odate >= 500 and odate < 700",
        )
        scans = plan.find_all(OpKind.PARTITION_SCAN)
        assert scans, plan.explain()
        assert scans[0].args["partitions"] == (2,)

    def test_range_band_prunes_the_merge_exchange_too(self, partitioned_db):
        # A band over two partitions keeps the merge exchange but only
        # over the surviving partitions' local-index scans.
        plan = plan_query(
            partitioned_db,
            "select okey, odate from orders "
            "where odate >= 250 and odate < 750 order by odate",
            config=OptimizerConfig(),
        )
        merges = plan.find_all(OpKind.MERGE_EXCHANGE)
        assert merges, plan.explain()
        assert plan.sort_count() == 0
        assert sorted(
            child.args["partition"] for child in merges[0].children
        ) == [1, 2]

    def test_prune_to_one_partition_drops_the_exchange(self):
        # An exchange needs >= 2 streams; a band inside one partition
        # must plan a plain local-index scan — ordered, no wrapper.
        # (Regression: this used to build a one-child merge exchange
        # that the executor rejects at build time.) Self-contained db:
        # large enough that the ordered index path beats scan + sort.
        from repro.catalog import Column, Index, TableSchema, range_spec
        from repro.sqltypes import INTEGER
        from repro.storage import Database

        db = Database()
        rows = sorted(
            ((i, (i * 7) % 400, i % 13) for i in range(5000)),
            key=lambda row: (row[1], row[0]),
        )
        db.create_table(
            TableSchema(
                "f",
                [
                    Column("k", INTEGER, nullable=False),
                    Column("d", INTEGER, nullable=False),
                    Column("v", INTEGER, nullable=False),
                ],
                primary_key=("k",),
                partitioning=range_spec(["d"], [100, 200, 300]),
            ),
            rows=rows,
        )
        db.create_index(Index.on("f_d", "f", ("d",), clustered=True))
        sql = "select k, d from f where d >= 100 and d < 200 order by d"
        plan = plan_query(db, sql, config=OptimizerConfig())
        assert not plan.find_all(OpKind.MERGE_EXCHANGE), plan.explain()
        assert not plan.find_all(OpKind.GATHER_EXCHANGE)
        assert plan.sort_count() == 0
        scans = plan.find_all(OpKind.INDEX_SCAN)
        assert scans and scans[0].args["partition"] == 1
        on = run_query(db, sql)
        off = run_query(db, sql, config=_no_partitioning())
        assert on.rows == off.rows

    def test_parameter_values_never_prune(self, partitioned_db):
        # Plans are cached and re-bound; a host variable's current value
        # must not bake a partition choice into the plan.
        plan = plan_query(
            partitioned_db,
            "select okey from orders where odate = :d",
        )
        scans = plan.find_all(OpKind.PARTITION_SCAN)
        touched = set()
        for scan in scans:
            touched.update(scan.args["partitions"])
        if scans:
            # Per-partition leaves under a gather are fine; a *pruned*
            # scan (fewer than all partitions in total) is not.
            assert touched == {0, 1, 2, 3}, plan.explain()


class TestPartitionWiseOperators:
    def test_copartitioned_join_zips_without_repartition(
        self, partitioned_db
    ):
        sql = (
            "select l.okey, l.qty, o.pri from lineitem l, orders2 o "
            "where l.okey = o.okey and o.pri = 3"
        )
        plan = plan_query(partitioned_db, sql, config=OptimizerConfig())
        gathers = plan.find_all(OpKind.GATHER_EXCHANGE)
        assert gathers, plan.explain()
        joins = plan.find_all(OpKind.HASH_JOIN)
        assert len(joins) == 4  # one per co-partitioned stream pair
        assert not plan.find_all(OpKind.PARTITION_SPLIT)
        off = run_query(partitioned_db, sql, config=_no_partitioning())
        on = run_query(partitioned_db, sql)
        assert sorted(on.rows) == sorted(off.rows)

    def test_colocated_group_by_pushes_below_the_gather(
        self, partitioned_db
    ):
        sql = "select okey, sum(qty) as q from lineitem group by okey"
        plan = plan_query(partitioned_db, sql, config=OptimizerConfig())
        gathers = plan.find_all(OpKind.GATHER_EXCHANGE)
        assert gathers, plan.explain()
        groups = plan.find_all(OpKind.GROUP_HASH)
        assert len(groups) == 4
        # Complete per-partition aggregation: the gather's inputs *are*
        # the per-partition group-bys — no combine stage above it.
        assert {id(g) for g in groups} == {
            id(child) for child in gathers[0].children
        }
        on = run_query(partitioned_db, sql)
        off = run_query(partitioned_db, sql, config=_no_partitioning())
        assert sorted(on.rows) == sorted(off.rows)

    def test_non_colocated_group_by_stays_sequential(self, partitioned_db):
        # Grouping on a non-partition column cannot push below the
        # gather — groups straddle partitions.
        plan = plan_query(
            partitioned_db,
            "select qty, count(*) as n from lineitem group by qty",
            config=OptimizerConfig(),
        )
        groups = plan.find_all(OpKind.GROUP_HASH) + plan.find_all(
            OpKind.GROUP_SORTED
        )
        assert len(groups) == 1, plan.explain()


class TestBaselines:
    @pytest.mark.parametrize(
        "config",
        [OptimizerConfig.disabled(), db2_faithful_config(), _no_partitioning()],
        ids=["disabled", "db2-faithful", "no-partitioning"],
    )
    def test_baseline_builds_emit_no_parallel_operators(
        self, partitioned_db, config
    ):
        for sql in (
            "select okey, odate from orders order by odate",
            "select okey, sum(qty) as q from lineitem group by okey",
            "select l.okey from lineitem l, orders2 o where l.okey = o.okey",
        ):
            plan = plan_query(partitioned_db, sql, config=config)
            for kind in PARALLEL_KINDS:
                assert not plan.find_all(kind), (sql, kind)

    def test_rows_agree_with_partitioning_on_and_off(self, partitioned_db):
        for sql in (
            "select okey, odate from orders order by odate, okey",
            "select okey, total from orders where odate >= 500 and odate < 700",
            "select o.okey, c.name from orders o, cust c "
            "where o.custkey = c.custkey and o.total < 2000",
            "select custkey, count(*) as n from orders "
            "group by custkey order by custkey",
        ):
            on = run_query(partitioned_db, sql)
            off = run_query(partitioned_db, sql, config=_no_partitioning())
            if " order by" in sql:
                assert on.rows == off.rows, sql
            else:
                assert sorted(on.rows) == sorted(off.rows), sql
