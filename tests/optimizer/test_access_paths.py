"""Single-table access-path generation and sargable analysis."""

import pytest

from repro import Column, Database, Index, OptimizerConfig, TableSchema
from repro.catalog import IndexColumn
from repro.core.ordering import SortDirection
from repro.cost.model import CostModel
from repro.expr import Comparison, ComparisonOp, col, lit
from repro.optimizer.plan import OpKind
from repro.optimizer.planner import (
    PlannerContext,
    access_paths,
    extract_sargable,
)
from repro.qgm.block import QueryBlock
from repro.qgm.boxes import SelectItem
from repro.sqltypes import INTEGER


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [
                Column("a", INTEGER, nullable=False),
                Column("b", INTEGER),
                Column("c", INTEGER),
            ],
            primary_key=("a",),
        ),
        rows=[(i, i % 10, i % 3) for i in range(500)],
    )
    database.create_index(Index.on("t_a", "t", ["a"], unique=True, clustered=True))
    database.create_index(Index.on("t_bc", "t", ["b", "c"]))
    return database


def planner_for(db, predicate=None, order_by=None):
    from repro.core.ordering import OrderSpec

    block = QueryBlock(
        tables={"t": "t"},
        predicate=predicate,
        select_items=[
            SelectItem(col("t", "a"), "a"),
            SelectItem(col("t", "b"), "b"),
            SelectItem(col("t", "c"), "c"),
        ],
        order_by=order_by or OrderSpec(),
    )
    return PlannerContext.build(db, OptimizerConfig(), block, CostModel())


def EQ(column, value):
    return Comparison(ComparisonOp.EQ, column, lit(value))


def LT(column, value):
    return Comparison(ComparisonOp.LT, column, lit(value))


def GE(column, value):
    return Comparison(ComparisonOp.GE, column, lit(value))


class TestExtractSargable:
    def index(self, db, name):
        return db.catalog.index(name)

    def test_equality_on_leading_column(self, db):
        bounds = extract_sargable(
            self.index(db, "t_bc"), "t", [EQ(col("t", "b"), 5)]
        )
        assert bounds.low == (5,) and bounds.high == (5,)
        assert len(bounds.covered) == 1

    def test_equality_prefix_plus_range(self, db):
        bounds = extract_sargable(
            self.index(db, "t_bc"),
            "t",
            [EQ(col("t", "b"), 5), LT(col("t", "c"), 2)],
        )
        assert bounds.low == (5,)
        assert bounds.high == (5, 2)
        assert not bounds.high_inclusive

    def test_range_both_sides(self, db):
        bounds = extract_sargable(
            self.index(db, "t_a"),
            "t",
            [GE(col("t", "a"), 10), LT(col("t", "a"), 20)],
        )
        assert bounds.low == (10,) and bounds.low_inclusive
        assert bounds.high == (20,) and not bounds.high_inclusive

    def test_gap_in_prefix_stops(self, db):
        # Predicate on c only: not sargable for (b, c) index.
        bounds = extract_sargable(
            self.index(db, "t_bc"), "t", [EQ(col("t", "c"), 1)]
        )
        assert not bounds.is_bounded()
        assert bounds.covered == []


class TestAccessPaths:
    def test_generates_scan_and_indexes(self, db):
        plans = access_paths(planner_for(db), "t")
        kinds = {plan.kind for plan in plans}
        assert OpKind.TABLE_SCAN in kinds or OpKind.FILTER in kinds
        index_plans = [
            plan
            for plan in plans
            if plan.find_all(OpKind.INDEX_SCAN)
        ]
        assert len(index_plans) >= 2

    def test_index_scan_carries_order_property(self, db):
        plans = access_paths(planner_for(db), "t")
        ordered = [plan for plan in plans if not plan.order.is_empty()]
        assert ordered
        heads = {plan.order.head().column for plan in ordered}
        assert col("t", "a") in heads

    def test_filter_applied_to_scan(self, db):
        planner = planner_for(db, predicate=EQ(col("t", "b"), 5))
        plans = access_paths(planner, "t")
        # Every plan must apply the predicate somewhere (filter node or
        # covered index bounds).
        for plan in plans:
            filters = plan.find_all(OpKind.FILTER)
            scans = plan.find_all(OpKind.INDEX_SCAN)
            covered = any(
                scan.args.get("low") is not None for scan in scans
            )
            assert filters or covered

    def test_filtered_cardinality(self, db):
        planner = planner_for(db, predicate=EQ(col("t", "b"), 5))
        plans = access_paths(planner, "t")
        for plan in plans:
            assert plan.properties.cardinality == pytest.approx(50.0)

    def test_eq_bound_key_flags_one_record(self, db):
        planner = planner_for(db, predicate=EQ(col("t", "a"), 7))
        plans = access_paths(planner, "t")
        assert any(plan.properties.key_property.one_record for plan in plans)

    def test_descending_variant_only_when_useful(self, db):
        from repro.core.ordering import OrderSpec, desc as desc_key

        planner = planner_for(db)
        planner.interesting_orders = []
        without = access_paths(planner, "t")
        planner.interesting_orders = [
            OrderSpec((desc_key(col("t", "a")),))
        ]
        with_desc = access_paths(planner, "t")
        desc_scans = [
            plan
            for plan in with_desc
            if any(
                scan.args.get("descending")
                for scan in plan.find_all(OpKind.INDEX_SCAN)
            )
        ]
        assert desc_scans
        assert len(with_desc) > len(without)
