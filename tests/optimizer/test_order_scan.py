"""The order scan (§5.1): interesting-order generation and push-down."""

import pytest

from repro import Column, Database, Index, OptimizerConfig, TableSchema
from repro.core.ordering import OrderSpec
from repro.expr import col
from repro.optimizer.order_scan import run_order_scan
from repro.optimizer.planner import PlannerContext
from repro.parser import parse_query
from repro.qgm import normalize, rewrite
from repro.sqltypes import INTEGER


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "a",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, i % 5) for i in range(50)],
    )
    database.create_table(
        TableSchema(
            "b",
            [Column("x", INTEGER, nullable=False), Column("w", INTEGER)],
        ),
        rows=[(i % 50, i) for i in range(100)],
    )
    return database


def scan_for(db, sql, config=None):
    block = normalize(rewrite(parse_query(sql, db.catalog)))
    planner = PlannerContext.build(db, config or OptimizerConfig(), block)
    return run_order_scan(planner), planner


class TestOrderScan:
    def test_order_by_produces_interesting_order(self, db):
        orders, _ = scan_for(db, "select x, y from a order by x, y")
        assert OrderSpec.of(col("a", "x")) in orders  # reduced: x is key

    def test_group_by_produces_concrete_order(self, db):
        orders, _ = scan_for(
            db,
            "select y, count(*) as n from a group by y",
        )
        assert OrderSpec.of(col("a", "y")) in orders

    def test_group_by_on_key_reduces_to_key(self, db):
        orders, _ = scan_for(
            db,
            "select x, y, count(*) as n from a group by x, y",
        )
        # {a.x} -> {a.y}: the concrete group order is just (a.x).
        assert OrderSpec.of(col("a", "x")) in orders
        assert all(len(order) == 1 for order in orders)

    def test_aligned_group_and_order_by(self, db):
        orders, _ = scan_for(
            db,
            "select y, count(*) as n from a group by y order by y",
        )
        assert OrderSpec.of(col("a", "y")) in orders

    def test_homogenization_through_join_equivalence(self, db):
        orders, _ = scan_for(
            db,
            "select b.x, count(*) as n from a, b where a.x = b.x "
            "group by b.x",
        )
        # b.x homogenizes to the class head a.x during the scan.
        heads = {order.head().column for order in orders}
        assert col("a", "x") in heads or col("b", "x") in heads

    def test_constant_bound_columns_drop_out(self, db):
        orders, _ = scan_for(
            db, "select x, y from a where y = 3 order by y, x"
        )
        assert OrderSpec.of(col("a", "x")) in orders

    def test_disabled_scan_is_empty(self, db):
        orders, planner = scan_for(
            db,
            "select x, y from a order by x",
            config=OptimizerConfig.disabled(),
        )
        assert orders == []

    def test_agg_only_order_by_yields_nothing(self, db):
        orders, _ = scan_for(
            db,
            "select y, count(*) as n from a group by y order by n",
        )
        # ORDER BY on the aggregate cannot push below the group-by; the
        # group order itself is still interesting.
        for order in orders:
            assert order.head().column.qualifier  # base column, not agg

    def test_max_orders_respected(self, db):
        config = OptimizerConfig(max_sort_ahead_orders=1)
        orders, _ = scan_for(
            db,
            "select distinct y, x from a order by x",
            config=config,
        )
        assert len(orders) <= 1

    def test_distinct_contributes_orders(self, db):
        orders, _ = scan_for(db, "select distinct y from a")
        assert OrderSpec.of(col("a", "y")) in orders
