"""Plan-shape assertions: the behaviours the paper's sections promise."""

import pytest

from repro import Optimizer, OptimizerConfig, plan_query
from repro.expr import col
from repro.optimizer.plan import OpKind


def no_hash_config(**overrides):
    config = OptimizerConfig(enable_hash_join=False, enable_hash_group_by=False)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def disabled_no_hash():
    config = OptimizerConfig.disabled()
    config.enable_hash_join = False
    config.enable_hash_group_by = False
    return config


class TestSortAvoidance:
    def test_order_by_on_key_prefix_uses_index(self, simple_db):
        plan = plan_query(simple_db, "select x, y from a order by x")
        assert plan.sort_count() == 0
        assert plan.find_all(OpKind.INDEX_SCAN)

    def test_order_by_without_index_sorts(self, simple_db):
        plan = plan_query(simple_db, "select x, y from a order by y")
        assert plan.sort_count() == 1

    def test_constant_bound_order_column_dropped(self, simple_db):
        """§4.1: a constant-bound sort column is eliminated — any sort
        that remains is on the reduced single column."""
        plan = plan_query(
            simple_db, "select x, y from a where y = 3 order by y, x"
        )
        for sort in plan.find_all(OpKind.SORT):
            assert sort.args["order"].columns == (col("a", "x"),)

    def test_disabled_build_sorts_on_constant_column(self, simple_db):
        plan = plan_query(
            simple_db,
            "select x, y from a where y = 3 order by y, x",
            config=OptimizerConfig.disabled(),
        )
        assert plan.sort_count() == 1

    def test_minimal_sort_columns(self, simple_db):
        """§4.2: the sort uses the reduced column list."""
        plan = plan_query(
            simple_db, "select x, y from a where y = 3 order by y, x"
        )
        sorts = plan.find_all(OpKind.SORT)
        for sort in sorts:
            assert len(sort.args["order"]) <= 1

    def test_group_by_on_key_needs_no_extra_columns(self, simple_db):
        """§8: grouping on key columns plus dependents — the key alone
        suffices after reduction."""
        plan = plan_query(
            simple_db,
            "select x, y, count(*) as n from a group by x, y",
            config=no_hash_config(),
        )
        sorts = plan.find_all(OpKind.SORT)
        group_sorts = [
            sort for sort in sorts if sort.args.get("reason") in ("group by", "sort-ahead")
        ]
        for sort in group_sorts:
            assert len(sort.args["order"]) == 1  # x key determines y

    def test_equivalence_class_satisfies_order_by(self, simple_db):
        """ORDER BY b.x with a.x = b.x satisfied by a's index order."""
        plan = plan_query(
            simple_db,
            "select a.x, b.z from a, b where a.x = b.x order by b.x",
            config=no_hash_config(),
        )
        assert plan.sort_count() <= 1  # merge-join sort at most
        order_sorts = [
            s for s in plan.find_all(OpKind.SORT)
            if s.args.get("reason") == "order by"
        ]
        assert not order_sorts


class TestCoverInPlans:
    def test_one_sort_serves_group_by_and_order_by(self, warehouse_db):
        """§4.3/§6: GROUP BY + compatible ORDER BY need only one sort."""
        plan = plan_query(
            warehouse_db,
            "select attr, grp, sum(v) as total from dim, fact "
            "where dim.k = fact.k group by attr, grp order by attr",
            config=no_hash_config(),
        )
        order_sorts = [
            s for s in plan.find_all(OpKind.SORT)
            if s.args.get("reason") == "order by"
        ]
        assert not order_sorts

    def test_disabled_build_needs_separate_sorts_when_unaligned(
        self, warehouse_db
    ):
        enabled = plan_query(
            warehouse_db,
            "select attr, grp, sum(v) as total from dim, fact "
            "where dim.k = fact.k group by grp, attr order by attr",
            config=no_hash_config(),
        )
        disabled = plan_query(
            warehouse_db,
            "select attr, grp, sum(v) as total from dim, fact "
            "where dim.k = fact.k group by grp, attr order by attr",
            config=disabled_no_hash(),
        )
        # The rigid build groups on (grp, attr) literally, which cannot
        # satisfy ORDER BY attr: it pays an extra sort.
        assert disabled.sort_count() > enabled.sort_count() or (
            disabled.cost.total_ms > enabled.cost.total_ms
        )


class TestSortAhead:
    def test_sort_ahead_appears_below_join(self, warehouse_db):
        plan = plan_query(
            warehouse_db,
            "select dim.k, attr, sum(v) as total from dim, fact "
            "where dim.k = fact.k group by dim.k, attr order by dim.k",
            config=no_hash_config(),
        )
        # Either an index provides the order or a sort sits below the
        # top-most join; in no case may the group-by re-sort above.
        group_sorts = [
            s for s in plan.find_all(OpKind.SORT)
            if s.args.get("reason") == "group by"
        ]
        assert not group_sorts

    def test_sort_ahead_disabled_with_master_switch(self, warehouse_db):
        config = disabled_no_hash()
        optimizer = Optimizer(warehouse_db, config)
        optimizer.plan_sql(
            "select dim.k, attr, sum(v) as total from dim, fact "
            "where dim.k = fact.k group by dim.k, attr order by dim.k"
        )
        assert optimizer.last_stats.sort_ahead_plans == 0
        assert optimizer.last_interesting_orders == []


class TestGeneralOrdersInPlans:
    def test_group_by_any_permutation_of_index_order(self, simple_db):
        """§7: GROUP BY y, x satisfiable by the (x) key index order with
        FD reduction — column order in the clause must not matter."""
        forward = plan_query(
            simple_db,
            "select x, y, count(*) as n from a group by x, y",
            config=no_hash_config(),
        )
        backward = plan_query(
            simple_db,
            "select y, x, count(*) as n from a group by y, x",
            config=no_hash_config(),
        )
        assert forward.sort_count() == backward.sort_count()

    def test_rigid_mode_depends_on_written_order(self, simple_db):
        config = disabled_no_hash()
        backward = plan_query(
            simple_db,
            "select y, x, count(*) as n from a group by y, x",
            config=config,
        )
        forward = plan_query(
            simple_db,
            "select x, y, count(*) as n from a group by x, y",
            config=config,
        )
        assert backward.sort_count() >= forward.sort_count()


class TestOrderedNlj:
    def test_ordered_flag_requires_order_optimization(self, warehouse_db):
        sql = (
            "select dim.k, v from dim, fact where dim.k = fact.k "
            "order by dim.k"
        )
        enabled = plan_query(warehouse_db, sql, config=no_hash_config())
        ordered_joins = [
            node
            for node in enabled.find_all(OpKind.NLJ_INDEX)
            if node.args.get("ordered")
        ]
        disabled = plan_query(warehouse_db, sql, config=disabled_no_hash())
        disabled_ordered = [
            node
            for node in disabled.find_all(OpKind.NLJ_INDEX)
            if node.args.get("ordered")
        ]
        assert not disabled_ordered
        # The enabled build finds at least one ordered probe plan here
        # (index on dim.k drives ordered probes into fact_k).
        assert ordered_joins or enabled.find_all(OpKind.MERGE_JOIN)


class TestDistinctPlans:
    def test_distinct_via_index_order_free(self, simple_db):
        plan = plan_query(
            simple_db,
            "select distinct x from a",
            config=no_hash_config(),
        )
        # With hash ops off, the sorted DISTINCT rides the key index
        # order: no sort anywhere.
        assert plan.sort_count() == 0
        assert plan.find_all(OpKind.DISTINCT_SORTED)

    def test_distinct_hash_available(self, simple_db):
        plan = plan_query(simple_db, "select distinct y from a")
        kinds = {node.kind for node in plan.find_all(OpKind.DISTINCT_HASH)} | {
            node.kind for node in plan.find_all(OpKind.DISTINCT_SORTED)
        }
        assert kinds


class TestMergeJoinCover:
    """§5.2: the merge-join outer sort covers a pending interesting
    order, so one sort feeds the join AND the ORDER BY."""

    def test_cover_sort_eliminates_top_sort(self, simple_db):
        config = no_hash_config(enable_index_nlj=False)
        plan = plan_query(
            simple_db,
            "select a.x, a.y, b.z from a, b where a.y = b.x "
            "order by a.y, a.x",
            config=config,
        )
        cover_sorts = [
            node
            for node in plan.find_all(OpKind.SORT)
            if node.args.get("reason") == "merge-join cover"
        ]
        order_sorts = [
            node
            for node in plan.find_all(OpKind.SORT)
            if node.args.get("reason") == "order by"
        ]
        if cover_sorts:
            # When the cover variant wins, the top sort is gone.
            assert not order_sorts
        # Either way the output must be ordered and the plan valid.
        from repro.api import execute

        result = execute(simple_db, plan)
        keys = [(row[1], row[0]) for row in result.rows]
        assert keys == sorted(keys)

    def test_cover_disabled_mode_never_uses_it(self, simple_db):
        config = disabled_no_hash()
        config.enable_index_nlj = False
        plan = plan_query(
            simple_db,
            "select a.x, a.y, b.z from a, b where a.y = b.x "
            "order by a.y, a.x",
            config=config,
        )
        assert not any(
            node.args.get("reason") == "merge-join cover"
            for node in plan.find_all(OpKind.SORT)
        )
