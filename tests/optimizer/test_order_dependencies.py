"""Pinned regressions: order dependencies provably drop sorts.

Each case plans the same SQL under ``use_order_dependencies`` on and
off, demands strictly fewer SORT/TOPN operators with ODs on, and checks
both plans still return byte-identical rows. These are the concrete
wins the OD machinery exists for; if a refactor silently loses one, the
feature has regressed even though every result is still correct.
"""

import pytest

from repro import Column, Database, Index, OptimizerConfig, TableSchema
from repro.api import plan_query, run_query
from repro.optimizer.plan import OpKind
from repro.sqltypes import INTEGER
from repro.sqltypes.values import sort_key
from repro.verify.gen import QueryGenerator, generate_schema
from repro.verify.oracle import _order_violation, output_order_positions, walk

OD_ON = OptimizerConfig()
OD_OFF = OptimizerConfig(use_order_dependencies=False)


def sort_count(database, sql, config):
    plan = plan_query(database, sql, config=config)
    return sum(
        1
        for node in walk(plan.root)
        if node.kind in (OpKind.SORT, OpKind.TOPN)
    )


def assert_od_drops_sorts(database, sql):
    with_ods = sort_count(database, sql, OD_ON)
    without = sort_count(database, sql, OD_OFF)
    assert with_ods < without, (
        f"expected ODs to drop a sort for {sql!r}: "
        f"{with_ods} sorts with ODs, {without} without"
    )
    rows_on = run_query(database, sql, config=OD_ON).rows
    rows_off = run_query(database, sql, config=OD_OFF).rows
    # ORDER BY ties leave row order within a tie unspecified, so compare
    # multisets and check the demanded ordering separately on each side.
    def canon(rows):
        return sorted(
            rows, key=lambda row: tuple(sort_key(value) for value in row)
        )

    assert canon(rows_on) == canon(rows_off)
    positions = output_order_positions(database, sql)
    assert _order_violation(rows_on, positions) is None
    assert _order_violation(rows_off, positions) is None


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "r",
            [
                Column("id", INTEGER, nullable=False),
                Column("val", INTEGER, nullable=False),
            ],
            primary_key=("id",),
        ),
        # High-cardinality val: sorting is expensive enough that the
        # cost model genuinely prefers the OD plan over re-sorting.
        rows=[(i, (i * 3) % 9973) for i in range(5000)],
    )
    database.create_index(Index.on("r_id", "r", ["id"], unique=True, clustered=True))
    database.create_index(Index.on("r_val", "r", ["val"], clustered=True))
    database.analyze_all()
    return database


def test_computed_alias_order_by_drops_sort(db):
    # ORDER BY a strictly monotone alias: the val index order already
    # satisfies it, but only the OD `val <-> v` proves that.
    assert_od_drops_sorts(db, "select val + 1 as v from r order by v")


def test_group_by_view_order_pushes_through_head(db):
    # The outer ORDER BY names the view's computed output; with ODs the
    # wanted order translates through the view head onto the group-by
    # column and rides the clustered val index. Without ODs the derived
    # result must be re-sorted after projection.
    assert_od_drops_sorts(
        db,
        "select g2, n from (select val + 1 as g2, count(*) as n "
        "from r group by val) t order by g2",
    )


def test_flip_on_non_nullable_source_drops_sort(db):
    # Direction-flipping OD: id is NOT NULL, so `9999 - id` descending
    # is the clustered id order ascending. (On a nullable source this
    # harvest is refused — NULLs would sit at the wrong end.)
    assert_od_drops_sorts(
        db, "select 9999 - id as idrev from r order by idrev desc"
    )


def test_fuzz_generated_query_drops_sorts_only_with_ods():
    """Acceptance pin: query #98 of the seed-7 fuzz stream (the first
    with an OD-only sort drop) plans with strictly fewer sorts under
    ODs, matching rows. Generator changes renumber the stream; if this
    exact spec stops being generated, keep the SQL literal below."""
    schema = generate_schema(7)
    database = schema.build()
    generator = QueryGenerator(schema, 7)
    for _ in range(99):
        spec = generator.generate()
    sql = (
        "select u.w, s.amt, r.id, r.grp, 2 * r.val as vdub "
        "from r, s, u where r.id + 1 = s.rid + 1 and r.grp = u.g "
        "order by vdub"
    )
    assert spec.sql() == sql, (
        "seed-7 stream shifted; update the pinned index/SQL deliberately"
    )
    assert_od_drops_sorts(database, sql)
