"""Declared type descriptors: validation and coercion."""

import datetime
import decimal

import pytest

from repro.errors import TypeSystemError
from repro.sqltypes import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    TypeFamily,
    decimal_type,
    varchar,
)


class TestInteger:
    def test_accepts_int(self):
        assert INTEGER.validate(42) == 42

    def test_accepts_integral_decimal(self):
        assert INTEGER.validate(decimal.Decimal("7")) == 7

    def test_rejects_bool(self):
        with pytest.raises(TypeSystemError):
            INTEGER.validate(True)

    def test_rejects_string(self):
        with pytest.raises(TypeSystemError):
            INTEGER.validate("7")

    def test_null_passes(self):
        assert INTEGER.validate(None) is None


class TestDouble:
    def test_coerces_int(self):
        assert DOUBLE.validate(3) == 3.0
        assert isinstance(DOUBLE.validate(3), float)

    def test_coerces_decimal(self):
        assert DOUBLE.validate(decimal.Decimal("1.5")) == 1.5


class TestDecimal:
    def test_quantizes_to_scale(self):
        money = decimal_type(15, 2)
        assert money.validate(decimal.Decimal("1.005")) == decimal.Decimal("1.01")
        assert money.validate(3) == decimal.Decimal("3.00")

    def test_float_round_trip(self):
        money = decimal_type(15, 2)
        assert money.validate(0.1) == decimal.Decimal("0.10")

    def test_bad_declaration(self):
        with pytest.raises(TypeSystemError):
            decimal_type(2, 5)
        with pytest.raises(TypeSystemError):
            decimal_type(0, 0)


class TestVarchar:
    def test_length_enforced(self):
        vc = varchar(3)
        assert vc.validate("abc") == "abc"
        with pytest.raises(TypeSystemError):
            vc.validate("abcd")

    def test_bad_declaration(self):
        with pytest.raises(TypeSystemError):
            varchar(0)

    def test_rejects_non_string(self):
        with pytest.raises(TypeSystemError):
            varchar(5).validate(5)


class TestDate:
    def test_accepts_date(self):
        day = datetime.date(1995, 3, 15)
        assert DATE.validate(day) == day

    def test_accepts_iso_string(self):
        assert DATE.validate("1995-03-15") == datetime.date(1995, 3, 15)

    def test_datetime_truncates(self):
        stamp = datetime.datetime(1995, 3, 15, 12, 30)
        assert DATE.validate(stamp) == datetime.date(1995, 3, 15)

    def test_bad_string(self):
        with pytest.raises(TypeSystemError):
            DATE.validate("not-a-date")


class TestComparability:
    def test_same_family_comparable(self):
        assert INTEGER.is_comparable_with(DOUBLE)
        assert INTEGER.is_comparable_with(decimal_type(10, 2))

    def test_cross_family_not_comparable(self):
        assert not INTEGER.is_comparable_with(varchar(5))
        assert not DATE.is_comparable_with(INTEGER)

    def test_families(self):
        assert BOOLEAN.family is TypeFamily.BOOLEAN
        assert DATE.family is TypeFamily.DATETIME
