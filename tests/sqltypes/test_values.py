"""Runtime value semantics: NULLs, three-valued compare, sort keys."""

import datetime
import decimal

import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeSystemError
from repro.sqltypes import NULL, is_null, sort_key, sql_compare, sql_equal


class TestNullMarker:
    def test_singleton(self):
        from repro.sqltypes.values import SqlNull

        assert SqlNull() is NULL

    def test_is_null(self):
        assert is_null(None)
        assert is_null(NULL)
        assert not is_null(0)
        assert not is_null("")

    def test_falsy(self):
        assert not NULL


class TestSqlCompare:
    def test_numeric(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 1) == 1
        assert sql_compare(2, 2) == 0

    def test_mixed_numeric_types(self):
        assert sql_compare(1, decimal.Decimal("1.0")) == 0
        assert sql_compare(1.5, decimal.Decimal("1.25")) == 1
        assert sql_compare(1, 1.0) == 0

    def test_strings(self):
        assert sql_compare("apple", "banana") == -1

    def test_dates(self):
        earlier = datetime.date(1995, 3, 14)
        later = datetime.date(1995, 3, 15)
        assert sql_compare(earlier, later) == -1

    def test_null_is_unknown(self):
        assert sql_compare(None, 1) is None
        assert sql_compare(1, None) is None
        assert sql_compare(None, None) is None

    def test_incomparable_types_raise(self):
        with pytest.raises(TypeSystemError):
            sql_compare(1, "one")

    def test_sql_equal(self):
        assert sql_equal(1, 1) is True
        assert sql_equal(1, 2) is False
        assert sql_equal(1, None) is None


class TestSortKey:
    def test_nulls_sort_last_ascending(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [1, 2, 3, None, None]

    def test_nulls_sort_first_descending(self):
        values = [3, None, 1]
        ordered = sorted(values, key=lambda v: sort_key(v, descending=True))
        assert ordered == [None, 3, 1]

    def test_descending_reverses(self):
        values = [1, 3, 2]
        ordered = sorted(values, key=lambda v: sort_key(v, descending=True))
        assert ordered == [3, 2, 1]

    def test_mixed_numerics_sort_consistently(self):
        values = [decimal.Decimal("1.5"), 1, 2.25]
        ordered = sorted(values, key=sort_key)
        assert [float(v) for v in ordered] == [1.0, 1.5, 2.25]

    def test_unsortable_raises(self):
        with pytest.raises(TypeSystemError):
            sort_key(object())

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=30))
    def test_ascending_matches_python_sort(self, values):
        assert sorted(values, key=sort_key) == sorted(values)

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=30))
    def test_descending_matches_reverse_sort(self, values):
        by_key = sorted(values, key=lambda v: sort_key(v, descending=True))
        assert by_key == sorted(values, reverse=True)

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
            max_size=30,
        )
    )
    def test_total_order_with_nulls(self, values):
        keys = [sort_key(value) for value in sorted(
            values, key=sort_key
        )]
        for left, right in zip(keys, keys[1:]):
            assert left <= right
