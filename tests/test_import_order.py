"""Tier-1 wrapper around ``tools/check_imports.py``.

The layering in CLAUDE.md is enforceable, so enforce it: any upward
import inside ``src/repro`` fails the suite with the same message the
standalone lint prints.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_imports", REPO_ROOT / "tools" / "check_imports.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_upward_imports():
    checker = _load_checker()
    problems = checker.check(REPO_ROOT / "src")
    assert not problems, "\n".join(problems)


def test_service_layer_is_registered_above_api():
    checker = _load_checker()
    order = checker.LAYERS
    assert order.index("service") > order.index("api")
    assert order.index("service") < order.index("tpcd")


def test_errors_must_stay_an_import_leaf(tmp_path):
    # The exception taxonomy is imported by every layer; the checker
    # must reject any repro import inside it, even a downward-looking
    # one, before the ordinary layer rules run.
    checker = _load_checker()
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "errors.py").write_text("from repro.sqltypes import X\n")
    problems = checker.check(tmp_path / "src")
    assert any("import leaf" in problem for problem in problems)
