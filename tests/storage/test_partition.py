"""Partitioned storage: routing, global RIDs, page accounting, keys."""

import pytest

from repro.catalog import Column, Index, TableSchema, hash_spec, range_spec
from repro.catalog.partition import _stable_hash
from repro.errors import CatalogError
from repro.sqltypes import INTEGER
from repro.storage import Database
from repro.storage.partition import _STRIDE, rid_partition


def _hash_db(rows):
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("k", INTEGER, nullable=False),
                Column("v", INTEGER, nullable=False),
            ],
            primary_key=("k",),
            partitioning=hash_spec(["k"], 4),
        ),
        rows=rows,
    )
    return db


class TestRouting:
    def test_hash_routing_matches_stable_hash(self):
        rows = [(i, i * 10) for i in range(200)]
        db = _hash_db(rows)
        heap = db.store("t").heap
        assert heap.partition_count == 4
        for part in range(4):
            for _, row in heap.scan_partition(part):
                assert _stable_hash((row[0],)) % 4 == part

    def test_range_routing_boundaries_are_exclusive_upper_edges(self):
        spec = range_spec(["k"], [10, 20])
        assert spec.partition_count == 3
        assert spec.route((9,)) == 0
        assert spec.route((10,)) == 1  # boundary value opens the next part
        assert spec.route((19,)) == 1
        assert spec.route((20,)) == 2
        assert spec.route((1_000,)) == 2

    def test_full_scan_is_partition_major_and_loses_no_rows(self):
        rows = [(i, i) for i in range(100)]
        db = _hash_db(rows)
        heap = db.store("t").heap
        scanned = [row for _, row in heap.scan()]
        assert sorted(scanned) == sorted(rows)
        parts = [rid_partition(rid) for rid, _ in heap.scan()]
        assert parts == sorted(parts)  # partition-major order


class TestGlobalRids:
    def test_fetch_by_global_rid(self):
        db = _hash_db([(i, -i) for i in range(64)])
        heap = db.store("t").heap
        for rid, row in heap.scan():
            assert heap.fetch(rid) == row
            assert rid.page_no // _STRIDE == rid_partition(rid)

    def test_partitioned_index_is_co_partitioned(self):
        db = _hash_db([(i, i % 7) for i in range(300)])
        db.create_index(Index.on("t_k", "t", ("k",), unique=True))
        tree = db.index_tree("t_k")
        assert tree.partition_count == 4
        # Entries land in the tree of the partition their RID addresses.
        for part in range(4):
            for _, rid in tree.partition(part).scan_range():
                assert rid_partition(rid) == part
        # A global range scan merges to full key order.
        keys = [key for key, _ in tree.scan_range()]
        assert keys == sorted(keys)
        assert len(keys) == 300
        # Point probes hit every partition but find exactly one match.
        from repro.core.ordering import SortDirection
        from repro.storage.database import encode_index_key

        key = encode_index_key((123,), (SortDirection.ASC,))
        (rid,) = tree.probe(key)
        assert db.store("t").heap.fetch(rid)[0] == 123


class TestAccounting:
    def test_partition_pages_sum_to_table_pages(self):
        db = _hash_db([(i, i) for i in range(500)])
        heap = db.store("t").heap
        assert heap.page_count == sum(
            heap.partition_page_count(p) for p in range(4)
        )
        assert heap.row_count == 500

    def test_partition_scan_touches_only_its_pages(self):
        db = _hash_db([(i, i) for i in range(500)])
        heap = db.store("t").heap
        for part in range(4):
            pages = list(heap.scan_pages_partition(part))
            assert len(pages) == heap.partition_page_count(part)
            assert sum(len(page) for page in pages) == heap.partition(
                part
            ).row_count


class TestKeys:
    def test_duplicate_key_rejected_even_across_partition_routing(self):
        # Partition columns are the key here, so the duplicate lands in
        # the same partition and the local tree must still refuse it.
        with pytest.raises(CatalogError):
            _hash_db([(1, 10), (2, 20), (1, 30)])


class TestPruning:
    def test_equality_pruning_selects_one_partition(self):
        spec = range_spec(["d"], [250, 500, 750])
        assert spec.prune_equal((300,)) == (1,)
        assert spec.prune_equal((750,)) == (3,)

    def test_range_pruning_selects_intersecting_partitions(self):
        spec = range_spec(["d"], [250, 500, 750])
        assert spec.prune_range(500, 699) == (2,)
        assert spec.prune_range(100, 600) == (0, 1, 2)
        assert spec.prune_range(None, 10) == (0,)
        assert spec.prune_range(800, None) == (3,)
        assert spec.prune_range(None, None) == (0, 1, 2, 3)

    def test_exclusive_high_on_a_boundary_drops_the_next_partition(self):
        # d >= 250 and d < 500 covers exactly partition 1; the
        # inclusive reading must still keep partition 2.
        spec = range_spec(["d"], [250, 500, 750])
        assert spec.prune_range(250, 500, high_inclusive=False) == (1,)
        assert spec.prune_range(250, 500, high_inclusive=True) == (1, 2)

    def test_hash_spec_never_range_prunes(self):
        spec = hash_spec(["k"], 4)
        assert spec.prune_range(1, 2) == (0, 1, 2, 3)
        assert len(spec.prune_equal((42,))) == 1
