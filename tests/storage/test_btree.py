"""B+-tree: inserts, bulk load, range scans, duplicates, direction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import BPlusTree, BufferPool
from repro.storage.heap import Rid


def make_tree(fanout=8):
    return BPlusTree("t", BufferPool(1024), fanout=fanout)


def keys_of(entries):
    return [key for key, _rid in entries]


class TestInsertAndScan:
    def test_single_insert(self):
        tree = make_tree()
        tree.insert((5,), Rid(0, 0))
        assert tree.probe((5,)) == [Rid(0, 0)]
        assert tree.entry_count == 1

    def test_many_inserts_sorted_scan(self):
        tree = make_tree()
        values = list(range(200))
        random.Random(3).shuffle(values)
        for value in values:
            tree.insert((value,), Rid(value, 0))
        scanned = keys_of(tree.scan_range())
        assert scanned == [(v,) for v in range(200)]
        assert tree.height > 1

    def test_duplicates_preserved(self):
        tree = make_tree()
        for slot in range(5):
            tree.insert((7,), Rid(0, slot))
        assert len(tree.probe((7,))) == 5

    def test_probe_missing_key(self):
        tree = make_tree()
        tree.insert((1,), Rid(0, 0))
        assert tree.probe((2,)) == []

    def test_fanout_guard(self):
        with pytest.raises(StorageError):
            BPlusTree("t", BufferPool(8), fanout=2)


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        entries = [((v,), Rid(v, 0)) for v in range(500)]
        shuffled = list(entries)
        random.Random(5).shuffle(shuffled)
        tree = make_tree(fanout=16)
        tree.bulk_load(shuffled)
        assert keys_of(tree.scan_range()) == [key for key, _ in entries]
        assert tree.entry_count == 500

    def test_bulk_load_empty(self):
        tree = make_tree()
        tree.bulk_load([])
        assert list(tree.scan_range()) == []
        assert tree.entry_count == 0

    def test_insert_after_bulk_load(self):
        tree = make_tree(fanout=8)
        tree.bulk_load([((v,), Rid(v, 0)) for v in range(0, 100, 2)])
        tree.insert((51,), Rid(51, 0))
        scanned = keys_of(tree.scan_range(low=(50,), high=(52,)))
        assert scanned == [(50,), (51,), (52,)]


class TestRangeScans:
    def setup_method(self):
        self.tree = make_tree(fanout=8)
        self.tree.bulk_load([((v,), Rid(v, 0)) for v in range(100)])

    def test_bounded_inclusive(self):
        assert keys_of(self.tree.scan_range((10,), (13,))) == [
            (10,), (11,), (12,), (13,),
        ]

    def test_bounded_exclusive(self):
        scanned = keys_of(
            self.tree.scan_range(
                (10,), (13,), low_inclusive=False, high_inclusive=False
            )
        )
        assert scanned == [(11,), (12,)]

    def test_open_low(self):
        assert keys_of(self.tree.scan_range(high=(2,))) == [(0,), (1,), (2,)]

    def test_open_high(self):
        assert keys_of(self.tree.scan_range(low=(97,))) == [(97,), (98,), (99,)]

    def test_descending_full(self):
        scanned = keys_of(self.tree.scan_range(descending=True))
        assert scanned == [(v,) for v in range(99, -1, -1)]

    def test_descending_bounded(self):
        scanned = keys_of(self.tree.scan_range((10,), (13,), descending=True))
        assert scanned == [(13,), (12,), (11,), (10,)]

    def test_empty_range(self):
        assert keys_of(self.tree.scan_range((50,), (40,))) == []


class TestCompositeKeys:
    def test_prefix_bounds(self):
        tree = make_tree()
        tree.bulk_load(
            [((a, b), Rid(a, b)) for a in range(10) for b in range(3)]
        )
        scanned = keys_of(tree.scan_range(low=(4,), high=(4,)))
        assert scanned == [(4, 0), (4, 1), (4, 2)]

    def test_full_key_bounds(self):
        tree = make_tree()
        tree.bulk_load(
            [((a, b), Rid(a, b)) for a in range(5) for b in range(5)]
        )
        scanned = keys_of(tree.scan_range(low=(2, 1), high=(2, 3)))
        assert scanned == [(2, 1), (2, 2), (2, 3)]


class TestIoAccounting:
    def test_scans_charge_buffer_accesses(self):
        pool = BufferPool(1024)
        tree = BPlusTree("t", pool, fanout=8)
        tree.bulk_load([((v,), Rid(v, 0)) for v in range(500)])
        pool.reset_stats()
        list(tree.scan_range())
        assert pool.stats.total_accesses > 0

    def test_leaf_chain_is_sequential(self):
        pool = BufferPool(4)  # tiny pool: no residency to hide behind
        tree = BPlusTree("t", pool, fanout=8)
        tree.bulk_load([((v,), Rid(v, 0)) for v in range(2000)])
        pool.clear()
        list(tree.scan_range())
        assert pool.stats.sequential_misses > pool.stats.random_misses


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=1000), max_size=200
    ),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)
def test_range_scan_matches_sorted_filter(values, low, high):
    """Property: a range scan returns exactly the sorted filtered keys."""
    if low > high:
        low, high = high, low
    tree = BPlusTree("t", BufferPool(1024), fanout=8)
    for index, value in enumerate(values):
        tree.insert((value,), Rid(index, 0))
    scanned = [key[0] for key, _rid in tree.scan_range((low,), (high,))]
    expected = sorted(v for v in values if low <= v <= high)
    assert scanned == expected
