"""Buffer pool: LRU behaviour and sequential/random classification."""

from repro.storage import BufferPool
from repro.storage.buffer import IoStats


class TestAccessClassification:
    def test_first_access_is_random_miss(self):
        pool = BufferPool(8)
        assert pool.access(("f", 0)) is False
        assert pool.stats.random_misses == 1

    def test_adjacent_miss_is_sequential(self):
        pool = BufferPool(2)
        pool.access(("f", 0))
        pool.access(("f", 1))
        pool.access(("f", 2))
        assert pool.stats.sequential_misses == 2
        assert pool.stats.random_misses == 1

    def test_prefetch_window_counts_sequential(self):
        pool = BufferPool(2)
        pool.access(("f", 0))
        pool.access(("f", 0 + BufferPool.PREFETCH_WINDOW))
        assert pool.stats.sequential_misses == 1

    def test_beyond_window_is_random(self):
        pool = BufferPool(2)
        pool.access(("f", 0))
        pool.access(("f", BufferPool.PREFETCH_WINDOW + 1))
        assert pool.stats.random_misses == 2

    def test_backward_jump_is_random(self):
        pool = BufferPool(2)
        pool.access(("f", 5))
        pool.access(("f", 4))
        assert pool.stats.random_misses == 2

    def test_per_file_sequentiality(self):
        pool = BufferPool(8)
        pool.access(("f", 0))
        pool.access(("g", 100))
        pool.access(("f", 1))  # still sequential within f
        assert pool.stats.sequential_misses == 1


class TestResidency:
    def test_hit_on_resident_page(self):
        pool = BufferPool(8)
        pool.access(("f", 0))
        assert pool.access(("f", 0)) is True
        assert pool.stats.hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(2)
        pool.access(("f", 0))
        pool.access(("f", 1))
        pool.access(("f", 2))  # evicts page 0
        assert pool.resident_count() == 2
        assert pool.access(("f", 0)) is False  # miss again

    def test_lru_order_updated_on_hit(self):
        pool = BufferPool(2)
        pool.access(("f", 0))
        pool.access(("f", 1))
        pool.access(("f", 0))  # refresh page 0
        pool.access(("f", 2))  # should evict page 1
        assert pool.access(("f", 0)) is True

    def test_invalidate_file(self):
        pool = BufferPool(8)
        pool.access(("f", 0))
        pool.access(("g", 0))
        pool.invalidate("f")
        assert pool.access(("f", 0)) is False
        assert pool.access(("g", 0)) is True

    def test_clear_resets_everything(self):
        pool = BufferPool(8)
        pool.access(("f", 0))
        pool.clear()
        assert pool.resident_count() == 0
        assert pool.stats.total_accesses == 0


class TestIoStats:
    def test_simulated_time_rates(self):
        stats = IoStats(hits=10, sequential_misses=10, random_misses=5)
        expected = 10 * IoStats.SEQUENTIAL_MS + 5 * IoStats.RANDOM_MS
        assert abs(stats.simulated_io_ms() - expected) < 1e-9

    def test_delta_since(self):
        earlier = IoStats(hits=1, sequential_misses=2, random_misses=3)
        later = IoStats(hits=5, sequential_misses=6, random_misses=7)
        delta = later.delta_since(earlier)
        assert (delta.hits, delta.sequential_misses, delta.random_misses) == (
            4,
            4,
            4,
        )

    def test_snapshot_is_copy(self):
        stats = IoStats(hits=1)
        snapshot = stats.snapshot()
        stats.hits = 99
        assert snapshot.hits == 1
