"""Heap files and the Database facade."""

import pytest

from repro import Column, Database, Index, TableSchema
from repro.errors import CatalogError, StorageError
from repro.sqltypes import INTEGER, varchar
from repro.storage import BufferPool, HeapFile
from repro.storage.heap import Rid


class TestHeapFile:
    def make(self, rows_per_page=4):
        return HeapFile("h", BufferPool(64), rows_per_page)

    def test_append_and_fetch(self):
        heap = self.make()
        rid = heap.append((1, "a"))
        assert heap.fetch(rid) == (1, "a")

    def test_pagination(self):
        heap = self.make(rows_per_page=4)
        for i in range(10):
            heap.append((i,))
        assert heap.page_count == 3
        assert heap.row_count == 10

    def test_scan_order(self):
        heap = self.make()
        for i in range(9):
            heap.append((i,))
        scanned = [row[0] for _rid, row in heap.scan()]
        assert scanned == list(range(9))

    def test_bad_rid(self):
        heap = self.make()
        heap.append((1,))
        with pytest.raises(StorageError):
            heap.fetch(Rid(5, 0))

    def test_truncate(self):
        heap = self.make()
        heap.append((1,))
        heap.truncate()
        assert heap.row_count == 0

    def test_rows_per_page_guard(self):
        with pytest.raises(StorageError):
            HeapFile("h", BufferPool(8), 0)


def make_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [Column("a", INTEGER, nullable=False), Column("b", varchar(8))],
            primary_key=("a",),
        ),
        rows=[(i, f"s{i % 3}") for i in range(100)],
    )
    return db


class TestDatabase:
    def test_load_and_stats(self):
        db = make_db()
        table = db.catalog.table("t")
        assert table.stats.row_count == 100
        assert table.stats.column("a").ndv == 100
        assert table.stats.column("b").ndv == 3

    def test_create_index_bulk_loads(self):
        db = make_db()
        db.create_index(Index.on("t_a", "t", ["a"], unique=True))
        tree = db.index_tree("t_a")
        assert tree.entry_count == 100

    def test_insert_maintains_indexes(self):
        db = make_db()
        db.create_index(Index.on("t_a", "t", ["a"], unique=True))
        store = db.store("t")
        store.insert((1000, "zz"))
        from repro.storage.database import encode_index_key
        from repro.core.ordering import SortDirection

        key = encode_index_key([1000], [SortDirection.ASC])
        assert len(db.index_tree("t_a").probe(key)) == 1

    def test_insert_validates(self):
        db = make_db()
        with pytest.raises(CatalogError):
            db.store("t").insert((None, "x"))

    def test_unknown_store(self):
        with pytest.raises(CatalogError):
            make_db().store("missing")

    def test_reset_io_modes(self):
        db = make_db()
        list(db.store("t").heap.scan())
        assert db.buffer_pool.stats.total_accesses > 0
        db.reset_io()
        assert db.buffer_pool.stats.total_accesses == 0
        assert db.buffer_pool.resident_count() > 0
        db.reset_io(cold=True)
        assert db.buffer_pool.resident_count() == 0

    def test_reload_refreshes_stats(self):
        db = make_db()
        db.store("t").load([(1, "only")])
        assert db.catalog.table("t").stats.row_count == 1


class TestKeyEnforcement:
    """Declared keys are enforced — the FD machinery depends on it."""

    def test_duplicate_primary_key_on_load(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.create_table(
                TableSchema(
                    "k1",
                    [Column("a", INTEGER, nullable=False)],
                    primary_key=("a",),
                ),
                rows=[(1,), (2,), (1,)],
            )

    def test_duplicate_primary_key_on_insert(self):
        db = Database()
        store = db.create_table(
            TableSchema(
                "k2",
                [Column("a", INTEGER, nullable=False)],
                primary_key=("a",),
            ),
            rows=[(1,), (2,)],
        )
        with pytest.raises(CatalogError):
            store.insert((2,))

    def test_composite_key_enforced(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.create_table(
                TableSchema(
                    "k3",
                    [
                        Column("a", INTEGER, nullable=False),
                        Column("b", INTEGER, nullable=False),
                    ],
                    primary_key=("a", "b"),
                ),
                rows=[(1, 1), (1, 2), (1, 1)],
            )

    def test_unique_key_allows_nulls(self):
        db = Database()
        store = db.create_table(
            TableSchema(
                "k4",
                [Column("a", INTEGER), Column("b", INTEGER, nullable=False)],
                primary_key=("b",),
                unique_keys=(("a",),),
            ),
            rows=[(None, 1), (None, 2), (5, 3)],
        )
        assert store.row_count() == 3

    def test_reload_resets_key_tracking(self):
        db = Database()
        store = db.create_table(
            TableSchema(
                "k5",
                [Column("a", INTEGER, nullable=False)],
                primary_key=("a",),
            ),
            rows=[(1,), (2,)],
        )
        store.load([(1,), (2,)])  # same keys fine after truncate
        assert store.row_count() == 2
