"""Catalog objects: tables, keys, indexes, registry."""

import pytest

from repro.catalog import Catalog, Column, Index, IndexColumn, TableSchema
from repro.core.ordering import OrderSpec, SortDirection
from repro.errors import CatalogError
from repro.expr import col
from repro.sqltypes import INTEGER, varchar


def make_table(name="t"):
    return TableSchema(
        name,
        [
            Column("a", INTEGER, nullable=False),
            Column("b", INTEGER),
            Column("c", varchar(10)),
        ],
        primary_key=("a",),
        unique_keys=(("b", "c"),),
    )


class TestTableSchema:
    def test_column_lookup(self):
        table = make_table()
        assert table.column("b").datatype is INTEGER
        with pytest.raises(CatalogError):
            table.column("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", INTEGER), Column("a", INTEGER)])

    def test_key_columns_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", INTEGER)], primary_key=("zz",))

    def test_keys_primary_first_no_duplicates(self):
        table = TableSchema(
            "t",
            [Column("a", INTEGER), Column("b", INTEGER)],
            primary_key=("a",),
            unique_keys=(("a",), ("b",)),
        )
        assert table.keys() == [("a",), ("b",)]

    def test_validate_row_coerces(self):
        table = make_table()
        row = table.validate_row((1, None, "hi"))
        assert row == (1, None, "hi")

    def test_validate_row_arity(self):
        with pytest.raises(CatalogError):
            make_table().validate_row((1, 2))

    def test_validate_row_not_null(self):
        with pytest.raises(CatalogError):
            make_table().validate_row((None, 2, "x"))

    def test_row_width_positive(self):
        assert make_table().row_width() > 0

    def test_position(self):
        assert make_table().position("c") == 2


class TestIndex:
    def test_order_spec_with_directions(self):
        index = Index(
            "i",
            "t",
            [IndexColumn("a"), IndexColumn("b", SortDirection.DESC)],
        )
        spec = index.order_spec("q")
        assert spec.columns == (col("q", "a"), col("q", "b"))
        assert spec[1].direction is SortDirection.DESC

    def test_empty_key_rejected(self):
        with pytest.raises(CatalogError):
            Index("i", "t", [])

    def test_on_constructor(self):
        index = Index.on("i", "t", ["a", "b"], unique=True)
        assert index.key_names == ("a", "b")
        assert index.unique


class TestCatalog:
    def test_create_and_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.create_table(make_table("Orders"))
        assert catalog.table("ORDERS").name == "Orders"
        assert catalog.has_table("orders")

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        with pytest.raises(CatalogError):
            catalog.create_table(make_table())

    def test_index_requires_table_and_columns(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.create_index(Index.on("i", "missing", ["a"]))
        catalog.create_table(make_table())
        with pytest.raises(CatalogError):
            catalog.create_index(Index.on("i", "t", ["zz"]))

    def test_indexes_on(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        catalog.create_index(Index.on("i1", "t", ["a"]))
        catalog.create_index(Index.on("i2", "t", ["b"]))
        assert {index.name for index in catalog.indexes_on("t")} == {"i1", "i2"}

    def test_drop_table_cascades_indexes(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        catalog.create_index(Index.on("i1", "t", ["a"]))
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.index("i1")

    def test_drop_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("nope")
        with pytest.raises(CatalogError):
            Catalog().drop_index("nope")
