"""Equi-depth histograms: skew-aware range selectivity."""

import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Histogram, TableStats


class TestHistogramBasics:
    def test_uniform_data(self):
        histogram = Histogram.from_values(list(range(1000)), buckets=16)
        assert abs(histogram.fraction_below(500) - 0.5) < 0.05
        assert histogram.fraction_below(-1) == 0.0
        assert histogram.fraction_below(2000) == 1.0

    def test_between(self):
        histogram = Histogram.from_values(list(range(1000)), buckets=16)
        assert abs(histogram.selectivity_between(250, 750) - 0.5) < 0.08

    def test_skewed_data(self):
        # 90% of mass at 5000; a uniform min/max model would be wildly
        # wrong about the upper range.
        values = list(range(500)) + [5000] * 4500
        histogram = Histogram.from_values(values, buckets=32)
        assert histogram.selectivity_between(4000, None) > 0.8

    def test_single_value(self):
        histogram = Histogram.from_values([7] * 100, buckets=8)
        assert histogram.fraction_below(7) == 1.0
        assert histogram.fraction_below(6) == 0.0

    def test_empty_returns_none(self):
        assert Histogram.from_values([], buckets=8) is None

    def test_unnumeric_returns_none(self):
        assert Histogram.from_values([object()], buckets=8) is None

    def test_dates(self):
        days = [
            datetime.date(1995, 1, 1) + datetime.timedelta(days=i)
            for i in range(365)
        ]
        histogram = Histogram.from_values(days, buckets=12)
        mid = datetime.date(1995, 7, 2)
        assert abs(histogram.fraction_below(mid) - 0.5) < 0.1

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=500,
        ),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_fraction_below_tracks_truth(self, values, probe):
        histogram = Histogram.from_values(values, buckets=16)
        truth = sum(1 for v in values if v <= probe) / len(values)
        estimate = histogram.fraction_below(probe)
        # Equi-depth error is bounded by ~2 bucket widths (the bucket
        # count degrades to len(values) for tiny samples).
        buckets = min(16, len(values))
        assert abs(estimate - truth) <= 2 / buckets + 0.02

    @given(
        st.lists(
            st.integers(min_value=0, max_value=100),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fraction_below_is_monotone(self, values):
        histogram = Histogram.from_values(values, buckets=8)
        fractions = [histogram.fraction_below(v) for v in range(0, 101, 5)]
        assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))


class TestCollectedHistograms:
    def test_collect_attaches_histograms(self):
        stats = TableStats.collect(["a"], [(i,) for i in range(200)])
        assert stats.column("a").histogram is not None

    def test_selectivity_uses_histogram_for_skew(self):
        rows = [(i,) for i in range(100)] + [(9000,) for _ in range(900)]
        stats = TableStats.collect(["a"], rows)
        upper = stats.column("a").selectivity_range(8000, None)
        assert upper > 0.7  # uniform model would estimate ~0.11

    def test_string_columns_survive(self):
        stats = TableStats.collect(["s"], [("abc",), ("zzz",), ("mmm",)])
        sel = stats.column("s").selectivity_range(None, "nnn")
        assert 0.0 <= sel <= 1.0
