"""Statistics collection and selectivity helpers."""

import datetime

from repro.catalog import ColumnStats, TableStats


class TestCollect:
    def test_counts_and_ndv(self):
        stats = TableStats.collect(
            ["a", "b"],
            [(1, "x"), (2, "x"), (2, "y"), (None, "y")],
        )
        assert stats.row_count == 4
        assert stats.column("a").ndv == 2
        assert stats.column("b").ndv == 2
        assert stats.column("a").null_count == 1

    def test_min_max(self):
        stats = TableStats.collect(["a"], [(5,), (1,), (9,)])
        assert stats.column("a").low == 1
        assert stats.column("a").high == 9

    def test_pages_estimate(self):
        stats = TableStats.collect(["a"], [(i,) for i in range(130)], page_rows=64)
        assert stats.pages == 3

    def test_empty_table(self):
        stats = TableStats.collect(["a"], [])
        assert stats.row_count == 0
        assert stats.pages == 1

    def test_unknown_column_default(self):
        stats = TableStats.collect(["a"], [(1,)])
        fallback = stats.column("missing")
        assert fallback.ndv >= 1


class TestSelectivity:
    def test_equality(self):
        column = ColumnStats(ndv=100)
        assert column.selectivity_equal(1000) == 0.01

    def test_range_numeric(self):
        column = ColumnStats(ndv=10, low=0, high=100)
        assert abs(column.selectivity_range(None, 50) - 0.5) < 1e-9
        assert abs(column.selectivity_range(75, None) - 0.25) < 1e-9

    def test_range_clamped(self):
        column = ColumnStats(ndv=10, low=0, high=100)
        assert column.selectivity_range(None, 1000) == 1.0
        assert column.selectivity_range(1000, None) == 0.0

    def test_range_dates(self):
        column = ColumnStats(
            ndv=10,
            low=datetime.date(1992, 1, 1),
            high=datetime.date(1998, 1, 1),
        )
        mid = datetime.date(1995, 1, 2)
        fraction = column.selectivity_range(None, mid)
        assert 0.4 < fraction < 0.6

    def test_range_default_when_unknown(self):
        column = ColumnStats()
        assert abs(column.selectivity_range(None, 5) - 1 / 3) < 1e-9

    def test_range_strings_monotone(self):
        column = ColumnStats(ndv=5, low="AAA", high="ZZZ")
        low = column.selectivity_range(None, "B")
        high = column.selectivity_range(None, "Y")
        assert 0.0 <= low < high <= 1.0
