"""Shared hygiene for the service tests: no leaked worker threads.

Every ``QueryService`` spawns ``repro-svc-*`` workers; graceful
shutdown must join them all. This autouse fixture fails any test in
this package that returns while a worker is still alive (a short grace
window absorbs ``close(wait=False)`` stragglers that are mid-exit).
"""

import threading
import time

import pytest


@pytest.fixture(autouse=True)
def no_leaked_service_workers():
    yield
    deadline = time.monotonic() + 5.0
    while True:
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread.name.startswith("repro-svc-") and thread.is_alive()
        ]
        if not leaked:
            return
        if time.monotonic() > deadline:
            pytest.fail(
                "QueryService worker threads leaked past the test: "
                + ", ".join(thread.name for thread in leaked)
            )
        time.sleep(0.01)
