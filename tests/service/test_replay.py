"""Satellite replay differential: cached parameterized plans vs fresh
literal plans over the pinned seed-7 fuzz corpus.

Every corpus statement runs three ways — planned fresh from its literal
text, through the plan cache (first arrival, a miss that plans the
parameterized text), and through the cache again (a hit that reuses the
cached plan with freshly extracted bindings). All three must produce
the same multiset of rows and honor the query's visible ORDER BY, under
both executor engines.

This is the end-to-end check of the §4.1 claim the cache is built on:
the plan the optimizer picks for ``seg = :p`` is interchangeable with
the plan for ``seg = 3`` *for the rows it produces*, not just for its
order properties.
"""

import pytest

from repro import run_query
from repro.service import PlanCache
from repro.verify.gen import QueryGenerator, generate_schema
from repro.verify.oracle import (
    _order_violation,
    normalized,
    output_order_positions,
)

CORPUS_SEED = 7
CORPUS_SIZE = 50


@pytest.fixture(scope="module")
def harness():
    schema = generate_schema(CORPUS_SEED)
    generator = QueryGenerator(schema, CORPUS_SEED)
    queries = [generator.generate().sql() for _ in range(CORPUS_SIZE)]
    return schema.build(), queries


@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
def test_cached_replay_matches_fresh_literal_plans(harness, mode):
    db, queries = harness
    cache = PlanCache(capacity=CORPUS_SIZE)
    mismatches = []
    for sql in queries:
        fresh = run_query(db, sql, mode=mode)
        first = run_query(db, sql, cache=cache, mode=mode)
        second = run_query(db, sql, cache=cache, mode=mode)
        # The second arrival of the same statement must reuse the plan.
        # (The first may already hit: distinct corpus statements can
        # normalize to the same fingerprint.)
        assert second.cache_status == "hit"
        expected = normalized(fresh.rows)
        for replay in (first, second):
            if normalized(replay.rows) != expected:
                mismatches.append((sql, replay.cache_status, "rows"))
                continue
            positions = output_order_positions(db, sql)
            if _order_violation(replay.rows, positions):
                mismatches.append((sql, replay.cache_status, "order"))
    assert not mismatches, mismatches
    stats = cache.stats()
    assert stats["hits"] >= CORPUS_SIZE  # every statement re-hit at least once
    assert stats["entries"] == stats["misses"] <= CORPUS_SIZE
