"""The cache-invalidation matrix: what forces a re-plan, what must not.

Each row of the matrix exercises one component of the cache key:

* unchanged context        -> guaranteed hit
* different database       -> miss (catalog identity in the key)
* DDL (a new index)        -> miss (catalog version in the key)
* statistics refresh       -> miss (stats version in the key)
* optimizer config toggle  -> miss (config fingerprint in the key)

Asserted through the cache's own counters, so the test also pins the
counter semantics the bench and ``stats()`` report.
"""

import pytest

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.service import PlanCache, QueryService
from repro.sqltypes import INTEGER

SQL = "select x, y from t where x = 17"


@pytest.fixture
def db() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, i % 7) for i in range(500)],
    )
    return db


def expect(cache, db, sql, status, config=None):
    result = run_query(db, sql, cache=cache, config=config)
    assert result.cache_status == status
    return result


def test_cross_database_collision_resolved_by_identity(db):
    """The wrong-results regression: two databases with coincidentally
    equal version counters must not share plans.

    db1 has t(k, v); db2 has the columns swapped, t(v, k). Before the
    catalog identity joined the cache key, db2's lookup hit db1's plan
    — a projection of the wrong column position — and returned db1's
    column values off db2's rows."""
    db1 = Database()
    db1.create_table(
        TableSchema(
            "t",
            [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
            primary_key=("k",),
        ),
        rows=[(7, 500)],
    )
    db2 = Database()
    db2.create_table(
        TableSchema(
            "t",
            [Column("v", INTEGER), Column("k", INTEGER, nullable=False)],
            primary_key=("k",),
        ),
        rows=[(500, 7)],
    )
    # The collision precondition: both catalogs went through identical
    # histories, so their version counters agree exactly.
    assert (db1.catalog.version, db1.catalog.stats_version) == (
        db2.catalog.version,
        db2.catalog.stats_version,
    )
    cache = PlanCache()
    first = run_query(db1, "select v from t", cache=cache)
    second = run_query(db2, "select v from t", cache=cache)
    assert first.rows == [(500,)]
    assert second.cache_status == "miss"  # identity keeps the keys apart
    assert second.rows == [(500,)]  # not db1's plan returning (7,)
    # Re-arrivals hit their own database's entry.
    assert run_query(db1, "select v from t", cache=cache).cache_status == "hit"
    assert run_query(db2, "select v from t", cache=cache).rows == [(500,)]
    # One database's sweep must not drop the co-tenant's plans.
    db1.create_index(Index.on("t_v1", "t", ["v"]))
    assert cache.invalidate_stale(
        db1.catalog.identity, db1.catalog.version, db1.catalog.stats_version
    ) == 1
    assert run_query(db2, "select v from t", cache=cache).cache_status == "hit"


def test_unchanged_context_guarantees_hit(db):
    cache = PlanCache()
    expect(cache, db, SQL, "miss")
    for _ in range(3):
        expect(cache, db, SQL, "hit")
    assert cache.stats()["hits"] == 3
    assert cache.stats()["misses"] == 1


def test_ddl_forces_miss(db):
    cache = PlanCache()
    expect(cache, db, SQL, "miss")
    expect(cache, db, SQL, "hit")
    before = db.catalog.version
    db.create_index(Index.on("t_y", "t", ["y"]))
    assert db.catalog.version == before + 1
    expect(cache, db, SQL, "miss")  # old entry unreachable: version in key
    expect(cache, db, SQL, "hit")
    # The stale entry is still occupying the LRU until swept.
    assert cache.invalidate_stale(
        db.catalog.identity, db.catalog.version, db.catalog.stats_version
    ) == 1
    assert cache.stats()["invalidations"] == 1


def test_stats_refresh_forces_miss(db):
    cache = PlanCache()
    expect(cache, db, SQL, "miss")
    before = db.catalog.stats_version
    db.analyze_table("t")
    assert db.catalog.stats_version == before + 1
    expect(cache, db, SQL, "miss")
    db.analyze_all()
    expect(cache, db, SQL, "miss")
    expect(cache, db, SQL, "hit")
    assert cache.stats()["misses"] == 3


def test_config_toggle_forces_miss(db):
    cache = PlanCache()
    expect(cache, db, SQL, "miss", config=OptimizerConfig())
    expect(cache, db, SQL, "hit", config=OptimizerConfig())
    expect(cache, db, SQL, "miss", config=OptimizerConfig.disabled())
    expect(cache, db, SQL, "hit", config=OptimizerConfig.disabled())
    # Both plans coexist: the config fingerprint keeps them apart.
    assert cache.stats()["entries"] == 2


def test_service_sweeps_stale_entries_on_version_change(db):
    with QueryService(db, workers=1) as service:
        service.query(SQL)
        service.query(SQL)
        assert service.cache.stats() == {
            **service.cache.stats(),
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
        }
        db.create_index(Index.on("t_y2", "t", ["y"]))
        service.query(SQL)  # observes the version bump, sweeps, replans
        stats = service.cache.stats()
        assert stats["misses"] == 2
        assert stats["invalidations"] == 1
        assert stats["entries"] == 1


def test_capacity_eviction_is_lru(db):
    cache = PlanCache(capacity=2)
    expect(cache, db, "select x from t where x = 1", "miss")
    expect(cache, db, "select y from t where x = 2", "miss")
    expect(cache, db, "select x from t where x = 3", "hit")  # same shape as first
    expect(cache, db, "select x, y from t where x = 4", "miss")  # evicts 'select y'
    expect(cache, db, "select y from t where x = 5", "miss")
    assert cache.stats()["evictions"] == 2
    assert len(cache) == 2


def test_run_query_surfaces_cache_status_in_analyzed(db):
    cache = PlanCache()
    first = run_query(db, SQL, cache=cache)
    second = run_query(db, SQL, cache=cache)
    assert "plan cache: miss" in first.analyzed
    assert "plan cache: hit" in second.analyzed
    uncached = run_query(db, SQL)
    assert uncached.cache_status is None
    assert "plan cache" not in uncached.analyzed
