"""The service resilience contract: deadlines, cancellation, graceful
shutdown, single-flight planning, and the observability that goes with
them.

The recurring pattern: every future a caller ever receives must
resolve — with rows, or with a *typed* ServiceError — no matter how
submits race close(), how slow a plan is, or when a deadline fires.
"""

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro import Column, Database, TableSchema
from repro.errors import (
    AdmissionError,
    QueryCancelled,
    QueryTimeout,
    ServiceClosed,
    ServiceError,
)
from repro.service import PlanCache, QueryService
from repro.sqltypes import INTEGER

SLOW_SQL = "select max(a.k) from big a, big b where a.v < b.v"


@pytest.fixture(scope="module")
def db() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
            primary_key=("k",),
        ),
        rows=[(i, i * 10) for i in range(200)],
    )
    # A table big enough that its self-cross-join (forced nested loops:
    # the predicate is non-equi) runs for several seconds uncancelled.
    db.create_table(
        TableSchema(
            "big",
            [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
            primary_key=("k",),
        ),
        rows=[(i, (i * 37) % 1000) for i in range(2500)],
    )
    return db


def stall_worker(service):
    """Replace service._run with one that blocks on an event; returns
    (entered, release) events. Deterministic worker occupancy without
    sleeps."""
    entered = threading.Event()
    release = threading.Event()
    inner_run = service._run

    def stalling_run(sql, parameters, config, token):
        entered.set()
        release.wait(timeout=30)
        return inner_run(sql, parameters, config, token)

    service._run = stalling_run
    return entered, release


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
def test_runaway_query_times_out_within_twice_deadline(db, mode):
    """A deliberately slow plan must stop mid-execution, not run to
    completion — and promptly: within 2x the deadline."""
    deadline = 0.5
    with QueryService(db, workers=1, mode=mode) as service:
        started = time.monotonic()
        future = service.submit(SLOW_SQL, timeout=deadline)
        with pytest.raises(QueryTimeout):
            future.result(timeout=30)
        elapsed = time.monotonic() - started
        assert elapsed < 2 * deadline, (
            f"timeout took {elapsed:.2f}s against a {deadline}s deadline"
        )
        stats = service.stats()
        assert stats.timeouts == 1
        # The worker survived; the service still serves.
        assert service.query("select v from t where k = 3").rows == [(30,)]


def test_deadline_covers_queue_wait(db):
    """A statement that out-waits its deadline in the admission queue
    fails with QueryTimeout without ever executing."""
    service = QueryService(db, workers=1, queue_depth=8)
    entered, release = stall_worker(service)
    try:
        blocker = service.submit("select v from t where k = 1")
        assert entered.wait(timeout=30)
        queued = service.submit("select v from t where k = 2", timeout=0.05)
        time.sleep(0.15)  # let the queued deadline lapse
        release.set()
        assert blocker.result(timeout=30).rows == [(10,)]
        with pytest.raises(QueryTimeout):
            queued.result(timeout=30)
        assert service.stats().timeouts == 1
    finally:
        release.set()
        service.close()


def test_default_timeout_applies_to_every_submit(db):
    with QueryService(db, workers=1, default_timeout=0.2) as service:
        with pytest.raises(QueryTimeout):
            service.query(SLOW_SQL)
        # An explicit timeout overrides the default.
        assert service.query(
            "select v from t where k = 5", timeout=30.0
        ).rows == [(50,)]


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------


def test_cancel_running_query_is_cooperative(db):
    with QueryService(db, workers=1) as service:
        future = service.submit(SLOW_SQL)
        while not future.running():
            time.sleep(0.005)
        assert service.cancel(future)
        with pytest.raises(QueryCancelled):
            future.result(timeout=30)
        assert service.stats().cancelled == 1
        assert service.query("select v from t where k = 7").rows == [(70,)]


def test_cancel_queued_query_never_runs(db):
    service = QueryService(db, workers=1, queue_depth=8)
    entered, release = stall_worker(service)
    try:
        blocker = service.submit("select v from t where k = 1")
        assert entered.wait(timeout=30)
        queued = service.submit("select v from t where k = 2")
        assert service.cancel(queued)
        release.set()
        assert blocker.result(timeout=30).rows == [(10,)]
        with pytest.raises(CancelledError):
            queued.result(timeout=30)
        assert service.stats().queries == 1  # the cancelled one never ran
    finally:
        release.set()
        service.close()


def test_cancel_finished_future_returns_false(db):
    with QueryService(db, workers=1) as service:
        future = service.submit("select v from t where k = 1")
        assert future.result(timeout=30).rows == [(10,)]
        assert not service.cancel(future)


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------


def test_close_fails_queued_futures_with_service_closed(db):
    service = QueryService(db, workers=1, queue_depth=16)
    entered, release = stall_worker(service)
    try:
        running = service.submit("select v from t where k = 1")
        assert entered.wait(timeout=30)
        queued = [
            service.submit(f"select v from t where k = {k}")
            for k in (2, 3, 4)
        ]
        service.close(wait=False)
        # Still-queued futures fail typed and immediately...
        for future in queued:
            with pytest.raises(ServiceClosed):
                future.result(timeout=30)
        # ...while the in-flight query drains to completion.
        release.set()
        assert running.result(timeout=30).rows == [(10,)]
        with pytest.raises(ServiceClosed):
            service.submit("select v from t where k = 5")
    finally:
        release.set()
        service.close()


def test_close_can_cancel_inflight_work(db):
    service = QueryService(db, workers=1)
    future = service.submit(SLOW_SQL)
    while not future.running():
        time.sleep(0.005)
    started = time.monotonic()
    service.close(cancel_inflight=True)
    assert time.monotonic() - started < 10.0
    with pytest.raises(QueryCancelled):
        future.result(timeout=1)


def test_close_joins_all_workers(db):
    service = QueryService(db, workers=3)
    assert service.query("select v from t where k = 1").rows == [(10,)]
    service.close()
    assert all(not worker.is_alive() for worker in service._workers)
    service.close()  # idempotent


def test_submit_vs_close_stress_no_dangling_futures(db):
    """Hammer submit against close: every future the caller ever got
    must complete — rows, ServiceClosed, or a cancellation — never a
    hang. (The old service could enqueue behind the shutdown sentinels
    and strand the future forever.)"""
    sql = "select v from t where k = 9"
    for _ in range(200):
        service = QueryService(db, workers=2, queue_depth=4)
        futures = []
        barrier = threading.Barrier(2)

        def hammer():
            barrier.wait()
            for _ in range(12):
                try:
                    futures.append(service.submit(sql))
                except AdmissionError:
                    continue
                except ServiceClosed:
                    break

        thread = threading.Thread(target=hammer)
        thread.start()
        barrier.wait()
        service.close()
        thread.join(timeout=30)
        assert not thread.is_alive()
        for future in futures:
            # close(wait=True) returned, so every admitted future must
            # already be resolved; .result() must never block.
            assert future.done()
            error = future.exception(timeout=0)
            if error is None:
                assert future.result().rows == [(90,)]
            else:
                assert isinstance(error, ServiceClosed)


# ----------------------------------------------------------------------
# Single-flight planning
# ----------------------------------------------------------------------


def test_concurrent_misses_plan_once(db, monkeypatch):
    from repro.optimizer import Optimizer

    real_plan_sql = Optimizer.plan_sql
    planned = []

    def slow_plan_sql(self, sql):
        planned.append(sql)
        time.sleep(0.05)  # hold the build open so the others pile up
        return real_plan_sql(self, sql)

    monkeypatch.setattr(Optimizer, "plan_sql", slow_plan_sql)
    cache = PlanCache()
    statuses = []
    results = []

    def plan_one(k):
        plan, bindings, status = cache.plan_for(
            db, f"select v from t where k = {k}"
        )
        statuses.append(status)
        results.append((plan, bindings))

    threads = [
        threading.Thread(target=plan_one, args=(k,)) for k in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(planned) == 1  # one build for eight concurrent arrivals
    assert sorted(statuses) == ["hit"] * 7 + ["miss"]
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 7
    assert stats["single_flight_waits"] == 7
    # Every caller still got its own binding vector.
    assert sorted(b["__p0"] for _p, b in results) == list(range(8))


def test_failed_build_elects_a_new_builder(db, monkeypatch):
    from repro.errors import OptimizerError
    from repro.optimizer import Optimizer

    real_plan_sql = Optimizer.plan_sql
    attempts = []
    gate = threading.Event()

    def flaky_plan_sql(self, sql):
        attempts.append(sql)
        if len(attempts) == 1:
            gate.wait(timeout=30)  # keep waiters parked on the barrier
            raise OptimizerError("injected planning failure")
        return real_plan_sql(self, sql)

    monkeypatch.setattr(Optimizer, "plan_sql", flaky_plan_sql)
    cache = PlanCache()
    outcomes = []

    def plan_one():
        try:
            outcomes.append(
                cache.plan_for(db, "select v from t where k = 1")[2]
            )
        except OptimizerError:
            outcomes.append("error")

    threads = [threading.Thread(target=plan_one) for _ in range(3)]
    threads[0].start()
    time.sleep(0.05)  # let thread 0 become the builder
    for thread in threads[1:]:
        thread.start()
    time.sleep(0.05)
    gate.set()
    for thread in threads:
        thread.join(timeout=30)
    # The first builder failed; a waiter took over and planned for real.
    assert outcomes.count("error") == 1
    assert outcomes.count("miss") == 1
    assert outcomes.count("hit") == 1


# ----------------------------------------------------------------------
# Observability: counters, slow-query log, explain
# ----------------------------------------------------------------------


def test_slow_query_log_records_offenders(db):
    with QueryService(db, workers=1, slow_query_ms=0.0) as service:
        service.query("select v from t where k = 11")
        service.query("select v from t where k = 12")
        log = service.slow_queries()
        assert len(log) == 2
        assert all(entry.elapsed_ms >= 0.0 for entry in log)
        assert "k = 11" in log[0].sql
        assert service.stats().slow == 2


def test_explain_surfaces_resilience_counters(db):
    with QueryService(db, workers=1, default_timeout=0.2) as service:
        with pytest.raises(QueryTimeout):
            service.query(SLOW_SQL)
        text = service.explain("select v from t where k = 1")
        assert "timeouts=1" in text
        assert "cancelled=0" in text
        assert "inflight=0" in text
        assert "single_flight_waits=" in text


def test_inflight_gauge_tracks_running_work(db):
    service = QueryService(db, workers=1)
    try:
        future = service.submit(SLOW_SQL, timeout=5.0)
        while not future.running():
            time.sleep(0.005)
        deadline = time.monotonic() + 5.0
        while service.stats().inflight != 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        service.cancel(future)
        with pytest.raises(QueryCancelled):
            future.result(timeout=30)
        assert service.stats().inflight == 0
    finally:
        service.close()


# ----------------------------------------------------------------------
# Version-sweep locking (the _last_versions race)
# ----------------------------------------------------------------------


def test_concurrent_analyze_and_queries_keep_cache_sound():
    db = Database()
    db.create_table(
        TableSchema(
            "s",
            [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
            primary_key=("k",),
        ),
        rows=[(i, i + 1) for i in range(100)],
    )
    with QueryService(db, workers=4, queue_depth=512) as service:
        stop = threading.Event()
        errors = []

        def analyze_storm():
            while not stop.is_set():
                db.analyze_table("s")
                time.sleep(0.001)

        analyzer = threading.Thread(target=analyze_storm)
        analyzer.start()
        try:
            futures = [
                service.submit("select v from s where k = :k", {"k": k % 100})
                for k in range(300)
            ]
            for k, future in enumerate(futures):
                rows = future.result(timeout=30).rows
                if rows != [((k % 100) + 1,)]:
                    errors.append((k, rows))
        finally:
            stop.set()
            analyzer.join(timeout=30)
        assert not errors
        # Quiesced: one more bump must be observed by exactly one sweep
        # and leave the tracked versions current.
        db.analyze_table("s")
        assert service.query("select v from s where k = 0").rows == [(1,)]
        assert service._last_versions == (
            db.catalog.version,
            db.catalog.stats_version,
        )
