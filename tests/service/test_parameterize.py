"""Auto-parameterization unit tests: what gets hoisted, what stays.

The carve-outs are the load-bearing part — a literal that changes plan
*shape* (IN-list arity, FETCH FIRST, ORDER BY ordinals) must never be
masked by a parameter marker, or two statements with different plans
would share a cache entry.
"""

import datetime
from decimal import Decimal

from repro.service import parameterize


def test_numbers_and_strings_become_parameters():
    q = parameterize("select x from t where a = 3 and b = 'hi'")
    assert q.bindings == {"__p0": 3, "__p1": "hi"}
    assert q.type_signature == ("int", "str")
    assert ":__p0" in q.text and ":__p1" in q.text
    assert "3" not in q.text and "'hi'" not in q.text


def test_fingerprint_ignores_literal_spelling_and_whitespace():
    a = parameterize("select x from t where seg = 3")
    b = parameterize("SELECT  x  FROM t WHERE seg=7")
    assert a.fingerprint == b.fingerprint
    assert a.bindings != b.bindings


def test_decimal_literals_keep_scale():
    q = parameterize("select x from t where a > 0.05")
    assert q.bindings["__p0"] == Decimal("0.05")
    assert q.type_signature == ("Decimal",)


def test_date_construct_collapses_to_one_parameter():
    q = parameterize("select x from t where d >= date('1995-03-15')")
    assert q.bindings == {"__p0": datetime.date(1995, 3, 15)}
    assert "date" not in q.text.lower()


def test_in_list_elements_stay_literal():
    q = parameterize("select x from t where a in (1, 2, 3) and b = 4")
    assert "( 1 , 2 , 3 )" in q.text
    assert q.bindings == {"__p0": 4}


def test_nested_parens_inside_in_list():
    q = parameterize("select x from t where (a) in ((1), (2)) and b = 9")
    assert q.bindings == {"__p0": 9}


def test_in_subquery_literals_still_parameterize():
    """IN (SELECT ...) is not an IN-list: the carve-out must not
    swallow the subquery, whose literals are ordinary predicates."""
    q = parameterize(
        "select x from t where a in (select y from u where z = 42)"
    )
    assert q.bindings == {"__p0": 42}
    assert "42" not in q.text
    assert ":__p0" in q.text


def test_in_subquery_fingerprint_shared_across_literals():
    a = parameterize("select x from t where a in (select y from u where z = 1)")
    b = parameterize("select x from t where a in (select y from u where z = 2)")
    assert a.fingerprint == b.fingerprint


def test_in_list_and_in_subquery_coexist():
    q = parameterize(
        "select x from t where a in (1, 2, 3) "
        "and b in (select y from u where z = 5)"
    )
    assert "( 1 , 2 , 3 )" in q.text  # the value list stays inline
    assert q.bindings == {"__p0": 5}  # the subquery literal is hoisted


def test_fetch_first_stays_literal():
    q = parameterize(
        "select x from t order by x fetch first 10 rows only"
    )
    assert q.bindings == {}
    assert "10" in q.text


def test_order_by_ordinals_stay_literal():
    q = parameterize("select x, y from t where a = 5 order by 2 desc, 1")
    assert q.bindings == {"__p0": 5}
    assert "order by 2 desc , 1" in q.text


def test_null_keyword_untouched():
    q = parameterize("select x from t where a is null")
    assert q.bindings == {}


def test_existing_host_variables_survive_without_collision():
    q = parameterize("select x from t where a = :__p0 and b = 2")
    assert ":__p0" in q.text
    assert "__p0" not in q.bindings
    assert list(q.bindings.values()) == [2]


def test_string_quotes_reescaped_in_fingerprint():
    q = parameterize("select x from t where a in ('it''s', 'b')")
    assert "'it''s'" in q.text
