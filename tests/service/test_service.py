"""QueryService behaviour: concurrency, backpressure, lifecycle.

The backpressure test stalls the single worker on an event so the
admission queue fills deterministically — no sleeps, no racing the
scheduler.
"""

import threading

import pytest

from repro import Column, Database, TableSchema
from repro.errors import AdmissionError, ServiceError
from repro.service import QueryService
from repro.sqltypes import INTEGER


@pytest.fixture(scope="module")
def db() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
            primary_key=("k",),
        ),
        rows=[(i, i * 10) for i in range(200)],
    )
    return db


def test_concurrent_bindings_get_their_own_rows(db):
    """One cached plan, many in-flight bindings, zero cross-talk."""
    with QueryService(db, workers=4, queue_depth=256) as service:
        futures = [
            (k, service.submit("select v from t where k = :k", {"k": k}))
            for k in range(100)
        ]
        for k, future in futures:
            assert future.result(timeout=30).rows == [(k * 10,)]
        stats = service.stats()
        assert stats.queries == 100
        assert stats.cache["misses"] == 1
        assert stats.cache["hits"] == 99
        assert stats.p95_ms >= stats.p50_ms > 0.0


def test_auto_parameterized_statements_share_one_plan(db):
    with QueryService(db, workers=2) as service:
        rows = [
            service.query(f"select v from t where k = {k}").rows
            for k in (3, 5, 8)
        ]
        assert rows == [[(30,)], [(50,)], [(80,)]]
        assert service.stats().cache["misses"] == 1


def test_admission_queue_rejects_when_full(db):
    service = QueryService(db, workers=1, queue_depth=1)
    release = threading.Event()
    entered = threading.Event()
    inner_run = service._run

    def stalling_run(sql, parameters, config, token):
        entered.set()
        release.wait(timeout=30)
        return inner_run(sql, parameters, config, token)

    service._run = stalling_run
    try:
        sql = "select v from t where k = 1"
        running = service.submit(sql)
        assert entered.wait(timeout=30)  # worker is stalled inside _run
        queued = service.submit(sql)  # fills the depth-1 queue
        with pytest.raises(AdmissionError):
            service.submit(sql)
        assert service.stats().rejected == 1
        release.set()
        assert running.result(timeout=30).rows == [(10,)]
        assert queued.result(timeout=30).rows == [(10,)]
    finally:
        release.set()
        service.close()


def test_errors_are_delivered_not_fatal(db):
    with QueryService(db, workers=1) as service:
        with pytest.raises(Exception):
            service.query("select nope from missing_table")
        # The worker survived the failure.
        assert service.query("select v from t where k = 2").rows == [(20,)]


def test_explain_reports_cache_verdict_and_latency(db):
    with QueryService(db, workers=1) as service:
        service.query("select v from t where k = 4")
        text = service.explain("select v from t where k = 9")
        assert "plan cache: hit" in text
        assert "p50=" in text and "p95=" in text


def test_closed_service_refuses_work(db):
    service = QueryService(db, workers=1)
    service.close()
    with pytest.raises(ServiceError):
        service.submit("select v from t where k = 1")


def test_interpreted_mode_service_agrees(db):
    with QueryService(db, workers=2, mode="interpreted") as interp, \
            QueryService(db, workers=2, mode="compiled") as comp:
        sql = "select k, v from t where v > 1800 order by k"
        assert interp.query(sql).rows == comp.query(sql).rows
        assert interp.query(sql).exec_mode == "interpreted"
