"""Seed-7 corpus replay through the QueryService under deadline fault
injection.

Three passes per engine over the pinned fuzz corpus:

1. baseline — the corpus through a fault-free service; rows recorded.
2. measure  — a counting hook tallies how many cancellation checkpoints
   each statement reaches, which splits the corpus into survivors
   (short queries) and victims (long ones) for a chosen threshold.
3. faulted  — with :func:`repro.verify.faults.inject_token_faults`
   tripping every token at its threshold-th checkpoint, victims must
   fail with a clean ``QueryTimeout`` while survivors return rows
   byte-identical to the baseline — the fault never corrupts, only
   interrupts.

The split is deterministic per engine because faults are counted per
token (one token per query), not globally.
"""

import pytest

from repro import run_query
from repro.errors import QueryCancelled, QueryTimeout
from repro.executor.context import set_fault_hook
from repro.service import QueryService
from repro.verify import inject_token_faults
from repro.verify.gen import QueryGenerator, generate_schema

CORPUS_SEED = 7
CORPUS_SIZE = 50


@pytest.fixture(scope="module")
def harness():
    schema = generate_schema(CORPUS_SEED)
    generator = QueryGenerator(schema, CORPUS_SEED)
    queries = [generator.generate().sql() for _ in range(CORPUS_SIZE)]
    return schema.build(), queries


def checkpoint_counts(service, queries):
    """Checkpoints reached per statement, measured sequentially through
    a single-worker service so the shared tally is unambiguous."""
    tally = {"checks": 0}

    def hook(token):
        tally["checks"] += 1

    previous = set_fault_hook(hook)
    counts = []
    try:
        for sql in queries:
            tally["checks"] = 0
            service.query(sql)
            counts.append(tally["checks"])
    finally:
        set_fault_hook(previous)
    return counts


@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
def test_corpus_survives_deadline_faults(harness, mode):
    db, queries = harness
    with QueryService(db, workers=1, mode=mode) as service:
        baseline = [service.query(sql).rows for sql in queries]
        counts = checkpoint_counts(service, queries)
        # Median threshold: some statements reach it (victims), the
        # rest stay under it (survivors). Both paths must be exercised.
        threshold = sorted(counts)[len(counts) // 2]
        victims = [i for i, n in enumerate(counts) if n >= threshold]
        survivors = [i for i, n in enumerate(counts) if n < threshold]
        assert victims, "no statement reaches the fault threshold"
        assert survivors, "every statement reaches the fault threshold"

        with inject_token_faults(after_checks=threshold, kind="timeout"):
            outcomes = []
            for sql in queries:
                try:
                    outcomes.append(("rows", service.query(sql).rows))
                except QueryTimeout:
                    outcomes.append(("timeout", None))

        for index in survivors:
            verdict, rows = outcomes[index]
            assert verdict == "rows", queries[index]
            assert rows == baseline[index], queries[index]
        for index in victims:
            assert outcomes[index][0] == "timeout", queries[index]
        assert service.stats().timeouts == len(victims)
        # Every worker survived every injected fault.
        assert all(worker.is_alive() for worker in service._workers)
        # And with the hook gone, the service is back to full health.
        assert service.query(queries[0]).rows == baseline[0]


PARTITIONED_SEED = 8  # this seed hash-partitions both fact and child


def per_token_maxima(service, queries):
    """Per statement: the checkpoint count of its busiest token.

    A partitioned plan runs several tokens at once (the statement's own
    plus one per exchange worker); faults trip each token at its *own*
    Nth checkpoint, so the statement fails iff its busiest token
    reaches the threshold — which is what this measures.
    """
    from collections import Counter

    tally = Counter()

    def hook(token):
        tally[id(token)] += 1

    previous = set_fault_hook(hook)
    maxima = []
    try:
        for sql in queries:
            tally.clear()
            service.query(sql)
            maxima.append(max(tally.values(), default=0))
    finally:
        set_fault_hook(previous)
    return maxima


def test_partitioned_corpus_worker_faults_are_typed_and_clean():
    """Corpus replay over partitioned tables: timing out individual
    partition workers surfaces the typed error at the gather point,
    strands no threads (suite-wide autouse guard), and leaves
    fault-free statements byte-identical."""
    schema = generate_schema(PARTITIONED_SEED)
    assert any(t.partitioning is not None for t in schema.tables)
    generator = QueryGenerator(schema, PARTITIONED_SEED)
    queries = [generator.generate().sql() for _ in range(20)]
    db = schema.build()
    with QueryService(db, workers=1) as service:
        baseline = [service.query(sql).rows for sql in queries]
        maxima = per_token_maxima(service, queries)
        threshold = sorted(maxima)[len(maxima) // 2]
        victims = [i for i, n in enumerate(maxima) if n >= threshold]
        survivors = [i for i, n in enumerate(maxima) if n < threshold]
        assert victims and survivors

        with inject_token_faults(after_checks=threshold, kind="timeout"):
            outcomes = []
            for sql in queries:
                try:
                    outcomes.append(("rows", service.query(sql).rows))
                except QueryTimeout:
                    outcomes.append(("timeout", None))

        for index in survivors:
            verdict, rows = outcomes[index]
            assert verdict == "rows", queries[index]
            assert rows == baseline[index], queries[index]
        for index in victims:
            assert outcomes[index][0] == "timeout", queries[index]
        assert all(worker.is_alive() for worker in service._workers)
        # Hook gone: partitioned plans run clean again.
        assert service.query(queries[0]).rows == baseline[0]


def test_injected_cancel_is_typed_and_non_fatal(harness):
    db, queries = harness
    with QueryService(db, workers=1) as service:
        expected = run_query(db, queries[0]).rows
        with inject_token_faults(after_checks=1, kind="cancel"):
            with pytest.raises(QueryCancelled):
                service.query(queries[0])
        assert service.stats().cancelled == 1
        assert service.query(queries[0]).rows == expected
