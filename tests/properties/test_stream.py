"""KeyProperty and StreamProperties."""

from repro.core import OrderContext, OrderSpec
from repro.expr import RowSchema, col
from repro.properties import KeyProperty, StreamProperties

AX, AY, BX, BY = col("a", "x"), col("a", "y"), col("b", "x"), col("b", "y")


class TestKeyProperty:
    def test_normalization_dedupes(self):
        kp = KeyProperty([[AX], [AX], [AX, AY]])
        assert len(kp.keys) == 2

    def test_one_record_condition(self):
        kp = KeyProperty.one_record_condition()
        assert kp.one_record
        assert kp.keys == ()

    def test_simplified_substitutes_heads(self):
        context = OrderContext.empty().with_equality(AX, BX)
        kp = KeyProperty([[BX]]).simplified(context)
        assert kp.keys == (frozenset((AX,)),)

    def test_simplified_drops_constant_columns(self):
        context = OrderContext.empty().with_constant(AY)
        kp = KeyProperty([[AX, AY]]).simplified(context)
        assert kp.keys == (frozenset((AX,)),)

    def test_fully_constant_key_means_one_record(self):
        """§5.2.1: a key fully qualified by equality predicates flags the
        one-record condition."""
        context = OrderContext.empty().with_constant(AX)
        kp = KeyProperty([[AX]]).simplified(context)
        assert kp.one_record

    def test_superset_keys_pruned(self):
        kp = KeyProperty([[AX], [AX, AY]]).simplified(OrderContext.empty())
        assert kp.keys == (frozenset((AX,)),)

    def test_concatenated_with(self):
        left = KeyProperty([[AX]])
        right = KeyProperty([[BX], [BY]])
        combined = left.concatenated_with(right)
        assert frozenset((AX, BX)) in combined.keys
        assert frozenset((AX, BY)) in combined.keys

    def test_concatenated_with_one_record_side(self):
        left = KeyProperty([[AX]])
        right = KeyProperty.one_record_condition()
        assert left.concatenated_with(right) == left

    def test_union_with_one_record(self):
        assert KeyProperty([[AX]]).union(
            KeyProperty.one_record_condition()
        ).one_record

    def test_projected_drops_broken_keys(self):
        kp = KeyProperty([[AX], [AX, BY]]).projected({AX, AY})
        assert kp.keys == (frozenset((AX,)),)

    def test_equality_order_insensitive(self):
        assert KeyProperty([[AX], [BY]]) == KeyProperty([[BY], [AX]])


class TestStreamProperties:
    def test_context_includes_keys_as_key_fds(self):
        props = StreamProperties(
            schema=RowSchema([AX, AY]),
            key_property=KeyProperty([[AX]]),
        )
        context = props.context()
        # Any column is determined once the key is present.
        assert context.fds.determines([AX], AY)

    def test_context_one_record_determines_everything(self):
        props = StreamProperties(
            schema=RowSchema([AX]),
            key_property=KeyProperty.one_record_condition(),
        )
        closure = props.context().fds.closure([])
        assert closure.determines_everything

    def test_with_order(self):
        props = StreamProperties(schema=RowSchema([AX]))
        updated = props.with_order(OrderSpec.of(AX))
        assert updated.order == OrderSpec.of(AX)
        assert props.order.is_empty()  # original untouched

    def test_with_cardinality_clamps(self):
        props = StreamProperties(schema=RowSchema([AX]))
        assert props.with_cardinality(-5).cardinality == 0.0
