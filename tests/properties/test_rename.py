"""rename_properties: exposing a derived table's facts under new names."""

from repro.core import OrderSpec
from repro.core.fd import fd
from repro.core.equivalence import EquivalenceClasses
from repro.expr import RowSchema, col
from repro.properties.propagate import rename_properties
from repro.properties.stream import KeyProperty, StreamProperties

AY, AN = col("a", "y"), col("", "n")
VY, VN = col("v", "y"), col("v", "n")
MAPPING = {AY: VY, AN: VN}


def make_props(**overrides):
    base = dict(
        schema=RowSchema([AY, AN]),
        order=OrderSpec.of(AY),
        key_property=KeyProperty([[AY]]),
        fds=None,
        cardinality=10.0,
    )
    base.update(overrides)
    from repro.core.fd import FDSet

    if base["fds"] is None:
        base["fds"] = FDSet([fd([AY], [AN])])
    return StreamProperties(**base)


class TestRenameProperties:
    def test_schema_renamed(self):
        renamed = rename_properties(make_props(), MAPPING)
        assert renamed.schema.columns == (VY, VN)

    def test_order_renamed(self):
        renamed = rename_properties(make_props(), MAPPING)
        assert renamed.order == OrderSpec.of(VY)

    def test_keys_renamed(self):
        renamed = rename_properties(make_props(), MAPPING)
        assert frozenset((VY,)) in renamed.key_property.keys

    def test_fds_renamed_and_usable(self):
        renamed = rename_properties(make_props(), MAPPING)
        assert renamed.fds.determines([VY], VN)

    def test_one_record_survives(self):
        props = make_props(key_property=KeyProperty.one_record_condition())
        renamed = rename_properties(props, MAPPING)
        assert renamed.key_property.one_record

    def test_constants_renamed(self):
        props = make_props(constants=frozenset((AY,)))
        renamed = rename_properties(props, MAPPING)
        assert VY in renamed.constants

    def test_equivalences_renamed(self):
        eq = EquivalenceClasses([(AY, AN)])
        props = make_props(equivalences=eq)
        renamed = rename_properties(props, MAPPING)
        assert renamed.equivalences.are_equivalent(VY, VN)

    def test_unmapped_order_suffix_dropped(self):
        props = make_props(order=OrderSpec.of(AY, AN))
        partial = {AY: VY}  # n not exposed
        renamed = rename_properties(
            StreamProperties(
                schema=RowSchema([AY]),
                order=props.order,
                cardinality=5.0,
            ),
            partial,
        )
        assert renamed.order == OrderSpec.of(VY)

    def test_predicates_never_leak(self):
        from repro.expr import Comparison, ComparisonOp, lit

        props = make_props(
            predicates=frozenset([Comparison(ComparisonOp.EQ, AY, lit(1))])
        )
        renamed = rename_properties(props, MAPPING)
        assert renamed.predicates == frozenset()

    def test_cardinality_preserved(self):
        renamed = rename_properties(make_props(cardinality=42.0), MAPPING)
        assert renamed.cardinality == 42.0
