"""PartitioningProperty: the lattice, colocation test, and propagation."""

import pytest

from repro.core.context import OrderContext
from repro.core.equivalence import EquivalenceClasses
from repro.expr.nodes import ColumnRef
from repro.properties.partitioning import (
    SINGLETON,
    PartitioningProperty,
    hash_partitioning,
    range_partitioning,
    round_robin,
)

A = ColumnRef("t", "a")
B = ColumnRef("t", "b")
C = ColumnRef("t", "c")
X = ColumnRef("u", "x")


class TestConstruction:
    def test_singleton_takes_no_columns(self):
        assert SINGLETON.is_singleton
        with pytest.raises(ValueError):
            PartitioningProperty("singleton", (A,), 1)

    def test_parallel_kinds_need_counts_and_columns(self):
        with pytest.raises(ValueError):
            hash_partitioning((A,), 1)
        with pytest.raises(ValueError):
            PartitioningProperty("hash", (), 4)
        with pytest.raises(ValueError):
            PartitioningProperty("roundrobin", (A,), 4)
        with pytest.raises(ValueError):
            PartitioningProperty("striped", (A,), 4)


class TestRestrictedAndRenamed:
    def test_projection_keeping_columns_preserves_partitioning(self):
        part = hash_partitioning((A, B), 4)
        assert part.restricted({A, B, C}) == part

    def test_projection_dropping_a_partition_column_degrades(self):
        part = range_partitioning((A, B), 3)
        degraded = part.restricted({A, C})
        assert degraded == round_robin(3)
        # Round-robin and singleton are fixed points.
        assert degraded.restricted(set()) == degraded
        assert SINGLETON.restricted(set()) == SINGLETON

    def test_rename_maps_or_degrades(self):
        part = hash_partitioning((A,), 4)
        assert part.renamed({A: X}) == hash_partitioning((X,), 4)
        assert part.renamed({B: X}) == round_robin(4)


class TestColocates:
    def test_singleton_colocates_anything(self):
        assert SINGLETON.colocates((A, B), OrderContext())

    def test_round_robin_colocates_nothing(self):
        assert not round_robin(4).colocates((A,), OrderContext())

    def test_exact_and_equivalent_columns_colocate(self):
        part = hash_partitioning((A,), 4)
        assert part.colocates((A, B), OrderContext())
        assert not part.colocates((B,), OrderContext())
        equiv = OrderContext(
            equivalences=EquivalenceClasses([(A, B)])
        )
        assert part.colocates((B,), equiv)

    def test_constant_partition_columns_are_ignored(self):
        part = hash_partitioning((A, B), 4)
        assert not part.colocates((B,), OrderContext())
        assert part.colocates((B,), OrderContext(constants=(A,)))


class TestAligned:
    def test_hash_alignment_via_join_equivalence(self):
        outer = hash_partitioning((A,), 4)
        inner = hash_partitioning((X,), 4)
        assert outer.aligned(inner, EquivalenceClasses([(A, X)]))
        assert not outer.aligned(inner, EquivalenceClasses())
        assert not outer.aligned(
            hash_partitioning((X,), 8), EquivalenceClasses([(A, X)])
        )

    def test_range_sides_never_align_by_equivalence(self):
        # Range boundary lists are per-table; equal values need not
        # route to equal partition indexes, so alignment is hash-only.
        left = range_partitioning((A,), 4)
        right = range_partitioning((X,), 4)
        assert not left.aligned(right, EquivalenceClasses([(A, X)]))


class TestPlanPropagation:
    """Partitioning claims on real optimizer plans (partitioned_db)."""

    def test_partition_scan_leaf_claims_table_partitioning(
        self, partitioned_db
    ):
        from repro.api import plan_query
        from repro.optimizer.plan import OpKind

        plan = plan_query(
            partitioned_db, "select okey, qty from lineitem"
        )
        gathers = plan.find_all(OpKind.GATHER_EXCHANGE)
        assert gathers, plan.explain()
        child = gathers[0].children[0]
        part = child.properties.partitioning
        assert part.kind == "hash"
        assert part.count == 4
        assert part.columns == (ColumnRef("lineitem", "okey"),)
        # The exchange itself hands a singleton stream to the classics.
        assert gathers[0].properties.partitioning.is_singleton
