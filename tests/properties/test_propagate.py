"""Property propagation through operators (§5.2.1)."""

from repro.catalog import Column, TableSchema
from repro.core import OrderSpec
from repro.core.ordering import desc
from repro.expr import Comparison, ComparisonOp, RowSchema, col, lit
from repro.properties import (
    propagate_filter,
    propagate_group_by,
    propagate_join,
    propagate_project,
    propagate_sort,
)
from repro.properties.propagate import base_table_properties, propagate_distinct
from repro.sqltypes import INTEGER

AX, AY = col("a", "x"), col("a", "y")
BX, BY = col("b", "x"), col("b", "y")
AGG = col("", "total")


def table(name, columns=("x", "y"), primary_key=("x",)):
    return TableSchema(
        name,
        [Column(c, INTEGER, nullable=False) for c in columns],
        primary_key=primary_key,
    )


def base(alias="a", primary_key=("x",), cardinality=100.0):
    schema = table(alias, primary_key=primary_key)
    props = base_table_properties(alias, schema, cardinality)
    return props


def EQ(left, right):
    return Comparison(ComparisonOp.EQ, left, right)


class TestBaseProperties:
    def test_schema_and_keys(self):
        props = base()
        assert props.schema.columns == (AX, AY)
        assert frozenset((AX,)) in props.key_property.keys

    def test_no_order_initially(self):
        assert base().order.is_empty()


class TestFilter:
    def test_constant_fact_harvested(self):
        props = propagate_filter(base(), EQ(AY, lit(5)), 10.0)
        assert AY in props.constants
        assert props.cardinality == 10.0

    def test_equality_fact_harvested(self):
        props = propagate_filter(base(), EQ(AX, AY), 10.0)
        assert props.equivalences.are_equivalent(AX, AY)

    def test_order_preserved(self):
        sorted_props = propagate_sort(base(), OrderSpec.of(AX))
        filtered = propagate_filter(sorted_props, EQ(AY, lit(1)), 5.0)
        assert filtered.order == OrderSpec.of(AX)

    def test_key_bound_by_constant_gives_one_record(self):
        props = propagate_filter(base(), EQ(AX, lit(5)), 1.0)
        assert props.key_property.one_record


class TestSort:
    def test_replaces_order_only(self):
        props = propagate_sort(base(), OrderSpec((desc(AY),)))
        assert props.order == OrderSpec((desc(AY),))
        assert props.key_property.keys  # untouched


class TestProject:
    def test_order_truncated_at_dropped_column(self):
        props = propagate_sort(base(), OrderSpec.of(AY, AX))
        projected = propagate_project(props, [AY])
        assert projected.order == OrderSpec.of(AY)

    def test_keys_dropped_when_column_lost(self):
        projected = propagate_project(base(), [AY])
        assert not projected.key_property.keys

    def test_constants_restricted(self):
        props = propagate_filter(base(), EQ(AY, lit(5)), 10.0)
        projected = propagate_project(props, [AX])
        assert AY not in projected.constants


class TestJoin:
    def test_n_to_1_propagates_outer_keys(self):
        """§5.2.1: inner key fully qualified by join predicates ⇒ outer
        key property propagates."""
        outer = base("b", primary_key=())  # no keys
        outer = outer.with_cardinality(500)
        inner = base("a")  # key a.x
        joined = propagate_join(
            outer, inner, [EQ(BX, AX)], 500.0, preserves_outer_order=True
        )
        # Outer has no keys; inner key is demoted to an FD over a's cols.
        assert not joined.key_property.one_record
        assert joined.fds.determines([AX], AY)

    def test_one_to_one_union(self):
        outer, inner = base("a"), base("b")
        joined = propagate_join(
            outer, inner, [EQ(AX, BX)], 100.0, preserves_outer_order=True
        )
        keys = set(joined.key_property.keys)
        # Both keys propagate (1:1 join); heads rewritten to a.x.
        assert frozenset((AX,)) in keys

    def test_m_to_n_concatenates_keys(self):
        outer = base("a", primary_key=("x", "y"))
        inner = base("b", primary_key=("x", "y"))
        joined = propagate_join(
            outer, inner, [EQ(AY, BY)], 1000.0, preserves_outer_order=True
        )
        # Neither side's key is bound ⇒ concatenated pairs.
        assert any(len(key) >= 2 for key in joined.key_property.keys)

    def test_order_preservation_flag(self):
        outer = propagate_sort(base("a"), OrderSpec.of(AX))
        inner = base("b")
        kept = propagate_join(outer, inner, [EQ(AX, BX)], 10.0, True)
        dropped = propagate_join(outer, inner, [EQ(AX, BX)], 10.0, False)
        assert kept.order == OrderSpec.of(AX)
        assert dropped.order.is_empty()

    def test_join_equalities_enter_equivalences(self):
        joined = propagate_join(
            base("a"), base("b"), [EQ(AX, BX)], 10.0, True
        )
        assert joined.equivalences.are_equivalent(AX, BX)

    def test_fd_from_demoted_key_supports_q3_reduction(self):
        """The Q3 pattern: orders' key {o_orderkey} demoted in the m:1
        join still determines o_orderdate — the FD Figure 7 depends on."""
        orders = base_table_properties(
            "o", table("o", ("orderkey", "orderdate"), ("orderkey",))
        )
        lineitem = base_table_properties(
            "l", table("l", ("orderkey", "line"), ("orderkey", "line"))
        )
        joined = propagate_join(
            lineitem,
            orders,
            [EQ(col("l", "orderkey"), col("o", "orderkey"))],
            1000.0,
            True,
        )
        context = joined.context()
        assert context.fds.determines(
            [col("o", "orderkey")], col("o", "orderdate")
        )
        assert context.equivalences.are_equivalent(
            col("l", "orderkey"), col("o", "orderkey")
        )


class TestGroupBy:
    def test_group_columns_key_output(self):
        props = base().with_cardinality(100)
        out_schema = RowSchema([AY, AGG])
        grouped = propagate_group_by(props, [AY], out_schema, [AGG], 10.0)
        assert frozenset((AY,)) in grouped.key_property.keys

    def test_group_fd_to_aggregates(self):
        props = base()
        out_schema = RowSchema([AY, AGG])
        grouped = propagate_group_by(props, [AY], out_schema, [AGG], 10.0)
        assert grouped.fds.determines([AY], AGG)

    def test_scalar_aggregate_one_record(self):
        props = base()
        out_schema = RowSchema([AGG])
        grouped = propagate_group_by(props, [], out_schema, [AGG], 1.0)
        assert grouped.key_property.one_record

    def test_sorted_input_order_survives(self):
        props = propagate_sort(base(), OrderSpec.of(AY))
        out_schema = RowSchema([AY, AGG])
        grouped = propagate_group_by(props, [AY], out_schema, [AGG], 10.0)
        assert grouped.order == OrderSpec.of(AY)


class TestDistinct:
    def test_all_columns_become_key(self):
        props = base("a", primary_key=()).with_cardinality(50)
        distinct = propagate_distinct(props, 25.0)
        assert frozenset((AX, AY)) in distinct.key_property.keys
