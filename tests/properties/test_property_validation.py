"""Validate §5.2.1 property propagation against *executed* data.

For a battery of queries, every node of the chosen plan is executed in
isolation and its claimed properties are checked against the rows it
actually produces:

* each candidate key in the key property is unique;
* the one-record condition means at most one row;
* every explicit FD holds functionally;
* the order property matches the physical row order;
* constant-bound columns hold a single value.

This is the strongest guard against unsound reductions: a wrong key or
FD would silently license removing a sort the data needs.
"""

import random

import pytest

from repro import Column, Database, Index, OptimizerConfig, TableSchema
from repro.api import plan_query
from repro.core.ordering import SortDirection
from repro.executor.build import build_operator
from repro.executor.context import ExecutionContext
from repro.optimizer.plan import OpKind, PlanNode
from repro.sqltypes import INTEGER, varchar
from repro.sqltypes.values import sort_key


@pytest.fixture(scope="module")
def db():
    rng = random.Random(17)
    database = Database()
    database.create_table(
        TableSchema(
            "d",
            [
                Column("k", INTEGER, nullable=False),
                Column("grp", INTEGER),
                Column("name", varchar(8)),
            ],
            primary_key=("k",),
        ),
        rows=[(i, rng.randint(0, 6), f"n{i % 9}") for i in range(40)],
    )
    database.create_table(
        TableSchema(
            "f",
            [
                Column("k", INTEGER, nullable=False),
                Column("seq", INTEGER, nullable=False),
                Column("v", INTEGER),
            ],
            primary_key=("k", "seq"),
        ),
        rows=[
            (k, seq, rng.randint(0, 99))
            for k in range(50)
            for seq in range(rng.randint(1, 4))
        ],
    )
    database.create_index(Index.on("d_k", "d", ["k"], unique=True, clustered=True))
    database.create_index(Index.on("f_k", "f", ["k"], clustered=True))
    return database


QUERIES = [
    "select k, grp from d where grp = 3 order by k",
    "select d.k, d.grp, f.v from d, f where d.k = f.k order by d.k",
    "select d.grp, count(*) as n from d, f where d.k = f.k group by d.grp",
    "select d.k, f.seq, f.v from d, f where d.k = f.k and d.k = 5",
    "select distinct grp from d order by grp",
    "select d.k, f.v from d left join f on d.k = f.k order by d.k",
]

CONFIGS = [
    OptimizerConfig(),
    OptimizerConfig(enable_hash_join=False, enable_hash_group_by=False),
]


def walk(node: PlanNode):
    yield node
    for child in node.children:
        yield from walk(child)


def marker(row, positions):
    return tuple(sort_key(row[p]) for p in positions)


def check_node(db, node: PlanNode):
    # (Re)execute just this subtree.
    operator = build_operator(node, db)
    rows = operator.execute(ExecutionContext(db))
    schema = node.properties.schema
    properties = node.properties

    if properties.key_property.one_record:
        assert len(rows) <= 1, f"one-record violated at {node.describe()}"
    for key in properties.key_property.keys:
        if not all(column in schema for column in key):
            continue  # key expressed on equivalence heads outside schema
        positions = [schema.position(column) for column in key]
        markers = [marker(row, positions) for row in rows]
        assert len(markers) == len(set(markers)), (
            f"key {sorted(map(str, key))} not unique at {node.describe()}"
        )

    for dependency in properties.fds:
        head = list(dependency.head)
        tail = list(dependency.tail)
        if not all(c in schema for c in head + tail):
            continue
        head_positions = [schema.position(c) for c in head]
        tail_positions = [schema.position(c) for c in tail]
        mapping = {}
        for row in rows:
            key = marker(row, head_positions)
            value = marker(row, tail_positions)
            previous = mapping.setdefault(key, value)
            assert previous == value, (
                f"FD {dependency} violated at {node.describe()}"
            )

    for column in properties.constants:
        if column not in schema:
            continue
        position = schema.position(column)
        values = {sort_key(row[position]) for row in rows}
        assert len(values) <= 1, (
            f"constant {column} not constant at {node.describe()}"
        )

    if not properties.order.is_empty():
        plan_keys = [
            (
                schema.position(key.column),
                key.direction is SortDirection.DESC,
            )
            for key in properties.order
            if key.column in schema
        ]
        markers_sequence = [
            tuple(sort_key(row[p], d) for p, d in plan_keys) for row in rows
        ]
        assert markers_sequence == sorted(markers_sequence), (
            f"order property {properties.order} violated at "
            f"{node.describe()}"
        )


@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
@pytest.mark.parametrize("sql", QUERIES)
def test_plan_properties_hold_on_data(db, sql, config_index):
    plan = plan_query(db, sql, config=CONFIGS[config_index])
    for node in walk(plan.root):
        check_node(db, node)
