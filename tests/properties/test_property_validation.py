"""Validate §5.2.1 property propagation against *executed* data.

The checking logic lives in :func:`repro.verify.oracle.audit_node` now
(the CLI's ``python -m repro.verify audit`` runs the same battery); this
module keeps the per-query/per-config pytest parametrization so a single
violated property fails one named test case.

For every battery query, each node of the chosen plan is executed in
isolation and its claimed properties are checked against the rows it
actually produces: candidate keys unique, one-record means at most one
row, explicit FDs functional, the order property physically true, and
constant-bound columns single-valued. This is the strongest guard
against unsound reductions: a wrong key or FD would silently license
removing a sort the data needs.
"""

import pytest

from repro.api import plan_query
from repro.verify.oracle import (
    AUDIT_QUERIES,
    audit_matrix,
    audit_plan,
    build_audit_database,
)


@pytest.fixture(scope="module")
def db():
    return build_audit_database()


CONFIGS = audit_matrix()


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("sql", AUDIT_QUERIES)
def test_plan_properties_hold_on_data(db, sql, config_name):
    plan = plan_query(db, sql, config=CONFIGS[config_name])
    violations = audit_plan(db, plan)
    assert not violations, "\n".join(violations)
