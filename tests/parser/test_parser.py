"""SQL parser: grammar coverage and name resolution."""

import datetime

import pytest

from repro import Column, Database, TableSchema
from repro.core.ordering import SortDirection
from repro.errors import ParseError
from repro.expr import col
from repro.expr.nodes import Aggregate, AggregateKind, BooleanExpr, Comparison
from repro.parser import parse_query
from repro.qgm import GroupByBox, SelectBox, normalize, rewrite
from repro.sqltypes import DATE, INTEGER, varchar


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "emp",
            [
                Column("id", INTEGER, nullable=False),
                Column("dept", INTEGER),
                Column("salary", INTEGER),
                Column("hired", DATE),
            ],
            primary_key=("id",),
        )
    )
    database.create_table(
        TableSchema(
            "dept",
            [Column("id", INTEGER, nullable=False), Column("name", varchar(20))],
            primary_key=("id",),
        )
    )
    return database


def block_of(db, sql):
    return normalize(rewrite(parse_query(sql, db.catalog)))


class TestBasicSelect:
    def test_select_columns(self, db):
        block = block_of(db, "select id, salary from emp")
        assert [item.name for item in block.select_items] == ["id", "salary"]
        assert block.tables == {"emp": "emp"}

    def test_select_star(self, db):
        block = block_of(db, "select * from emp")
        assert len(block.select_items) == 4

    def test_alias_resolution(self, db):
        block = block_of(db, "select e.id from emp e")
        assert block.select_items[0].output == col("e", "id")

    def test_as_alias(self, db):
        block = block_of(db, "select id as employee from emp")
        assert block.select_items[0].name == "employee"

    def test_unqualified_ambiguity(self, db):
        with pytest.raises(ParseError):
            parse_query("select id from emp, dept", db.catalog)

    def test_unknown_column(self, db):
        with pytest.raises(ParseError):
            parse_query("select wages from emp", db.catalog)

    def test_unknown_table(self, db):
        with pytest.raises(Exception):
            parse_query("select x from missing", db.catalog)

    def test_unknown_alias(self, db):
        with pytest.raises(ParseError):
            parse_query("select z.id from emp", db.catalog)

    def test_trailing_garbage(self, db):
        with pytest.raises(ParseError):
            parse_query("select id from emp garbage extra", db.catalog)


class TestExpressions:
    def test_arithmetic_precedence(self, db):
        block = block_of(db, "select salary + 2 * 3 as v from emp")
        # Must parse as salary + (2 * 3).
        expr = block.select_items[0].expression
        assert "(2 * 3)" in str(expr)

    def test_parentheses(self, db):
        block = block_of(db, "select (salary + 2) * 3 as v from emp")
        assert str(block.select_items[0].expression).startswith("((")

    def test_between_desugars(self, db):
        block = block_of(
            db, "select id from emp where salary between 10 and 20"
        )
        assert isinstance(block.predicate, BooleanExpr)

    def test_in_list(self, db):
        block = block_of(db, "select id from emp where dept in (1, 2, 3)")
        assert "IN" in str(block.predicate)

    def test_is_null(self, db):
        block = block_of(db, "select id from emp where hired is null")
        assert "IS NULL" in str(block.predicate)

    def test_is_not_null(self, db):
        block = block_of(db, "select id from emp where hired is not null")
        assert "IS NOT NULL" in str(block.predicate)

    def test_date_literal(self, db):
        block = block_of(
            db, "select id from emp where hired > date('1995-03-15')"
        )
        assert "1995-03-15" in str(block.predicate)

    def test_bad_date(self, db):
        with pytest.raises(ParseError):
            parse_query(
                "select id from emp where hired > date('95/03/15')",
                db.catalog,
            )

    def test_unary_minus(self, db):
        block = block_of(db, "select id from emp where salary > -5")
        assert "(0 - 5)" in str(block.predicate)

    def test_case_when(self, db):
        block = block_of(
            db,
            "select case when salary > 10 then 1 else 0 end as flag from emp",
        )
        assert "CASE WHEN" in str(block.select_items[0].expression)

    def test_not(self, db):
        block = block_of(db, "select id from emp where not dept = 3")
        assert "NOT" in str(block.predicate)


class TestGroupingAndAggregates:
    def test_group_by_with_sum(self, db):
        block = block_of(
            db,
            "select dept, sum(salary) as total from emp group by dept",
        )
        assert block.group_columns == [col("emp", "dept")]
        assert block.aggregates[0][0] == "total"
        assert block.aggregates[0][1].kind is AggregateKind.SUM

    def test_count_star(self, db):
        block = block_of(
            db, "select dept, count(*) as n from emp group by dept"
        )
        assert block.aggregates[0][1].argument is None

    def test_distinct_aggregate(self, db):
        block = block_of(
            db,
            "select dept, count(distinct salary) as n from emp group by dept",
        )
        assert block.aggregates[0][1].distinct

    def test_aggregate_inside_expression(self, db):
        block = block_of(
            db,
            "select dept, sum(salary) / count(*) as avg_pay "
            "from emp group by dept",
        )
        assert len(block.aggregates) == 2

    def test_having_with_aggregate(self, db):
        block = block_of(
            db,
            "select dept, sum(salary) as total from emp "
            "group by dept having sum(salary) > 100",
        )
        assert block.having is not None
        # The HAVING aggregate reuses the select-list aggregate output.
        assert len(block.aggregates) == 1

    def test_group_by_non_column_rejected(self, db):
        with pytest.raises(ParseError):
            parse_query(
                "select dept from emp group by dept + 1", db.catalog
            )


class TestOrderBy:
    def test_directions(self, db):
        block = block_of(db, "select id, salary from emp order by salary desc, id")
        assert block.order_by[0].direction is SortDirection.DESC
        assert block.order_by[1].direction is SortDirection.ASC

    def test_positional(self, db):
        block = block_of(db, "select id, salary from emp order by 2")
        assert block.order_by[0].column == col("emp", "salary")

    def test_positional_out_of_range(self, db):
        with pytest.raises(ParseError):
            parse_query("select id from emp order by 3", db.catalog)

    def test_alias_reference(self, db):
        block = block_of(
            db,
            "select dept, sum(salary) as total from emp "
            "group by dept order by total desc",
        )
        assert block.order_by[0].column == col("", "total")

    def test_order_by_unselected_column(self, db):
        block = block_of(db, "select id from emp order by salary")
        assert block.order_by[0].column == col("emp", "salary")


class TestSubqueriesAndDistinct:
    def test_distinct_flag(self, db):
        block = block_of(db, "select distinct dept from emp")
        assert block.distinct

    def test_from_subquery_merges(self, db):
        block = block_of(
            db,
            "select v.d from (select dept as d from emp where salary > 5) v "
            "where v.d < 9",
        )
        assert block.tables == {"emp": "emp"}
        assert "salary" in str(block.predicate)
        assert "dept" in str(block.predicate)

    def test_subquery_requires_alias(self, db):
        with pytest.raises(ParseError):
            parse_query("select d from (select dept as d from emp)", db.catalog)

    def test_inner_join_folds_on_into_where(self, db):
        block = block_of(
            db,
            "select e.id from emp e join dept d on e.dept = d.id "
            "where e.salary > 10",
        )
        assert not block.outer_joins
        assert "e.dept = d.id" in str(block.predicate)
        assert "e.salary > 10" in str(block.predicate)

    def test_left_outer_join_recorded(self, db):
        block = block_of(
            db,
            "select e.id, d.name from emp e "
            "left outer join dept d on e.dept = d.id",
        )
        assert set(block.outer_joins) == {"d"}
        assert "e.dept = d.id" in str(block.outer_joins["d"])
        # ON predicate must NOT leak into the WHERE.
        assert block.predicate is None

    def test_left_join_requires_on(self, db):
        with pytest.raises(ParseError):
            parse_query(
                "select e.id from emp e left join dept d", db.catalog
            )

    def test_fetch_first(self, db):
        block = block_of(
            db, "select id from emp order by id fetch first 10 rows only"
        )
        assert block.fetch_first == 10

    def test_fetch_first_requires_positive_integer(self, db):
        with pytest.raises(ParseError):
            parse_query(
                "select id from emp fetch first 0 rows only", db.catalog
            )
        with pytest.raises(ParseError):
            parse_query(
                "select id from emp fetch first 2.5 rows only", db.catalog
            )

    def test_host_variable(self, db):
        from repro.expr.nodes import Parameter

        block = block_of(db, "select id from emp where dept = :d")
        assert ":d" in str(block.predicate)


class TestQgmShapes:
    def test_plain_select_box(self, db):
        box = parse_query("select id from emp", db.catalog)
        assert isinstance(box, SelectBox)
        assert not box.is_join()

    def test_join_box(self, db):
        box = parse_query(
            "select e.id from emp e, dept d where e.dept = d.id",
            db.catalog,
        )
        assert isinstance(box, SelectBox)
        assert box.is_join()

    def test_group_pipeline_shape(self, db):
        box = parse_query(
            "select dept, sum(salary) as total from emp group by dept",
            db.catalog,
        )
        assert isinstance(box, SelectBox)
        inner = box.quantifiers()[0].box
        assert isinstance(inner, GroupByBox)

    def test_group_quantifier_input_order(self, db):
        box = parse_query(
            "select dept, sum(salary) as total from emp group by dept",
            db.catalog,
        )
        group_box = box.quantifiers()[0].box
        assert group_box.quantifier.input_order is not None
