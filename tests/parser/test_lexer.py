"""SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.parser import Token, TokenKind, tokenize


def kinds(sql):
    return [token.kind for token in tokenize(sql)[:-1]]


def texts(sql):
    return [token.text for token in tokenize(sql)[:-1]]


class TestTokens:
    def test_keywords_lowercased(self):
        tokens = tokenize("SELECT x FROM t")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")

    def test_identifiers_keep_case(self):
        assert texts("SELECT MyCol FROM T") == ["select", "MyCol", "from", "T"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.125")
        assert [t.text for t in tokens[:-1]] == ["1", "2.5", "0.125"]
        assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])

    def test_qualified_name_not_number(self):
        # t.5 would be nonsense; a.x must lex as ident, dot, ident.
        tokens = tokenize("a.x")
        assert [t.text for t in tokens[:-1]] == ["a", ".", "x"]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hello world"

    def test_string_escape_doubled_quote(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_operators(self):
        assert texts("a <> b <= c >= d != e") == [
            "a", "<>", "b", "<=", "c", ">=", "d", "!=", "e",
        ]

    def test_comments_skipped(self):
        tokens = tokenize("select x -- comment\nfrom t")
        assert len(tokens) == 5  # select x from t EOF

    def test_positions(self):
        tokens = tokenize("select\n  x")
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_bad_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("select #")
        assert info.value.column == 8

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_punctuation(self):
        assert texts("(a, b)") == ["(", "a", ",", "b", ")"]
