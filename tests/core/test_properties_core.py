"""Property-based tests (hypothesis) for the order algebra.

Strategy: generate a random dataset together with a *true* context — the
constants, equalities, FDs, and keys are enforced on the data by
construction, so the context's facts genuinely hold. Then check the
paper's semantic claims:

* reduction never changes how a specification compares any two records;
* a satisfied Test Order means physically sorted data satisfies the
  interesting order;
* a cover satisfies both of its inputs;
* a satisfied general order means the data is grouped.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core import (
    GeneralOrderSpec,
    OrderContext,
    OrderSpec,
    cover_order,
    reduce_order,
)
from repro.core import test_order as check_order
from repro.core.fd import fd
from repro.core.ordering import OrderKey, SortDirection
from repro.expr import col
from repro.sqltypes import sort_key

COLUMNS = [col("t", name) for name in ("c0", "c1", "c2", "c3", "c4")]
WIDTH = len(COLUMNS)


@st.composite
def dataset_with_context(draw):
    """(rows, context) where the context's facts hold on the rows.

    Transformations are applied in sequence (later ones may clobber
    earlier ones), then every candidate fact is *verified* against the
    final data before entering the context — so the context is always
    consistent with the rows.
    """
    row_count = draw(st.integers(min_value=0, max_value=24))
    rows: List[List[int]] = [
        [draw(st.integers(min_value=0, max_value=4)) for _ in range(WIDTH)]
        for _ in range(row_count)
    ]

    # Candidate transformations.
    constant_positions = draw(
        st.sets(st.integers(min_value=0, max_value=WIDTH - 1), max_size=2)
    )
    for position in constant_positions:
        for row in rows:
            row[position] = 7
    equality_pairs = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        left = draw(st.integers(min_value=0, max_value=WIDTH - 1))
        right = draw(st.integers(min_value=0, max_value=WIDTH - 1))
        if left == right:
            continue
        for row in rows:
            row[right] = row[left]
        equality_pairs.append((left, right))
    fd_pair = None
    if draw(st.booleans()):
        source = draw(st.integers(min_value=0, max_value=WIDTH - 1))
        target = draw(st.integers(min_value=0, max_value=WIDTH - 1))
        if source != target:
            for row in rows:
                row[target] = (row[source] * 3 + 1) % 5
            fd_pair = (source, target)
    key_position = None
    if draw(st.booleans()):
        key_position = 0
        for index, row in enumerate(rows):
            row[0] = index

    # Verify each candidate fact against the final data.
    context = OrderContext.empty()
    for position in constant_positions:
        if len({row[position] for row in rows}) <= 1:
            context = context.with_constant(COLUMNS[position])
    for left, right in equality_pairs:
        if all(row[left] == row[right] for row in rows):
            context = context.with_equality(COLUMNS[left], COLUMNS[right])
    if fd_pair is not None:
        source, target = fd_pair
        mapping = {}
        functional = True
        for row in rows:
            if mapping.setdefault(row[source], row[target]) != row[target]:
                functional = False
                break
        if functional:
            context = context.with_fd(fd([COLUMNS[source]], [COLUMNS[target]]))
    if key_position is not None:
        values = [row[key_position] for row in rows]
        if len(set(values)) == len(values):
            context = context.with_key([COLUMNS[key_position]])

    return [tuple(row) for row in rows], context


@st.composite
def order_specs(draw, max_length: int = 4):
    length = draw(st.integers(min_value=0, max_value=max_length))
    positions = draw(
        st.permutations(range(WIDTH)).map(lambda p: list(p)[:length])
    )
    keys = []
    for position in positions:
        direction = (
            SortDirection.DESC if draw(st.booleans()) else SortDirection.ASC
        )
        keys.append(OrderKey(COLUMNS[position], direction))
    return OrderSpec(keys)


def _comparator(spec: OrderSpec):
    positions = {column: index for index, column in enumerate(COLUMNS)}

    def key_of(row: Tuple[int, ...]):
        return tuple(
            sort_key(
                row[positions[key.column]],
                key.direction is SortDirection.DESC,
            )
            for key in spec
        )

    return key_of


def _compare(spec: OrderSpec, left, right) -> int:
    key_of = _comparator(spec)
    a, b = key_of(left), key_of(right)
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def _is_sorted_by(rows, spec: OrderSpec) -> bool:
    key_of = _comparator(spec)
    keys = [key_of(row) for row in rows]
    return all(keys[i] <= keys[i + 1] for i in range(len(keys) - 1))


@settings(max_examples=120, deadline=None)
@given(dataset_with_context(), order_specs())
def test_reduction_preserves_record_comparison(data, spec):
    """Reducing a spec never changes the relative order of any two rows
    of a dataset on which the context's facts hold (§4.1 correctness)."""
    rows, context = data
    reduced = reduce_order(spec, context)
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            assert _compare(spec, rows[i], rows[j]) == _compare(
                reduced, rows[i], rows[j]
            )


@settings(max_examples=120, deadline=None)
@given(dataset_with_context(), order_specs(), order_specs())
def test_test_order_is_sound(data, interesting, order_property):
    """If Test Order says satisfied, data sorted by the property is
    sorted by the interesting order."""
    rows, context = data
    if not check_order(interesting, order_property, context):
        return
    ordered = sorted(rows, key=_comparator(order_property))
    assert _is_sorted_by(ordered, interesting)


@settings(max_examples=120, deadline=None)
@given(dataset_with_context(), order_specs(max_length=3), order_specs(max_length=3))
def test_cover_satisfies_both_inputs(data, first, second):
    rows, context = data
    cover = cover_order(first, second, context)
    if cover is None:
        return
    assert check_order(first, cover, context)
    assert check_order(second, cover, context)
    ordered = sorted(rows, key=_comparator(cover))
    assert _is_sorted_by(ordered, first)
    assert _is_sorted_by(ordered, second)


@settings(max_examples=120, deadline=None)
@given(dataset_with_context(), order_specs(max_length=4))
def test_reduction_idempotent_and_minimal(data, spec):
    _rows, context = data
    reduced = reduce_order(spec, context)
    assert reduce_order(reduced, context) == reduced
    # Minimality: no retained column is determined by its predecessors.
    for index in range(len(reduced)):
        prefix = [key.column for key in reduced[:index]]
        assert not context.fds.determines(prefix, reduced[index].column)


@settings(max_examples=100, deadline=None)
@given(
    dataset_with_context(),
    st.sets(st.integers(min_value=0, max_value=WIDTH - 1), min_size=1, max_size=3),
    order_specs(),
)
def test_general_order_satisfaction_means_grouped(data, group_positions, op):
    """If the GROUP BY general order accepts an order property, then
    data sorted that way has each group contiguous."""
    rows, context = data
    group_columns = [COLUMNS[position] for position in sorted(group_positions)]
    general = GeneralOrderSpec.from_group_by(group_columns)
    if not general.satisfied_by(op, context):
        return
    ordered = sorted(rows, key=_comparator(op))
    seen_groups = set()
    previous = object()
    for row in ordered:
        group = tuple(row[position] for position in sorted(group_positions))
        if group != previous:
            assert group not in seen_groups, (
                f"group {group} split under {op}"
            )
            seen_groups.add(group)
            previous = group


@settings(max_examples=100, deadline=None)
@given(dataset_with_context(), order_specs(max_length=3))
def test_sorting_by_reduced_spec_equals_sorting_by_original(data, spec):
    rows, context = data
    reduced = reduce_order(spec, context)
    original_sorted = sorted(rows, key=_comparator(spec))
    reduced_sorted = sorted(rows, key=_comparator(reduced))
    # Python's sort is stable, and the comparators agree pairwise, so
    # the full orderings must be identical.
    assert original_sorted == reduced_sorted
