"""Metamorphic pinning of the OD-aware algebra against naive oracles.

The order-dependency extension threads an :class:`ODSet` through the
memoized front doors: Test Order grows a positional OD rule, Homogenize
grows order-equivalent substitution, and Reduce consumes the FDs every
OD implies. Three relations pin it:

* On contexts carrying random ODs, the memoized operations agree with
  the OD-generalized naive references (:mod:`repro.core.reference`:
  plain BFS reachability over base edges, textbook closure, no memo) —
  fresh memos, warmed memos, and the memoization kill switch.
* Reduce degrades exactly to the FD-only algorithm: replacing the OD
  set with just its implied FDs leaves every reduction unchanged, so
  OD-aware reduce equals the naive reference under FD-only inputs.
* A lying cached Test Order verdict — the table where OD conclusions
  about sort interchangeability live — is caught by the differential
  config-matrix oracle and shrunk to a minimal repro (the OD twin of
  ``tests/verify/test_shrink.py``'s reduce-memo poison).
"""

import random

import pytest

from repro.core import (
    clear_memos,
    cover_order,
    homogenize_order,
    memoization_disabled,
    reduce_order,
)
from repro.core import test_order as check_order
from repro.core.context import OrderContext
from repro.core.fd import fd
from repro.core.od import EMPTY_ODS, OrderDependency
from repro.core.ordering import OrderKey, OrderSpec, SortDirection
from repro.core.reference import (
    cover_order_reference,
    homogenize_order_reference,
    naive_od_flips,
    reduce_order_reference,
)
from repro.core.reference import test_order_reference as check_order_reference
from repro.expr import col

POOL = [col(table, f"c{i}") for table in ("t", "u") for i in range(5)]


def random_ods(rng):
    """A random OD set over the pool: one-way edges, equivalences, and
    the occasional direction flip, so closures chain and cycle."""
    ods = EMPTY_ODS
    for _ in range(rng.randint(1, 4)):
        source, target = rng.sample(POOL, 2)
        flip = rng.random() < 0.3
        if rng.random() < 0.4:
            ods = ods.add_equivalence(source, target, flip=flip)
        else:
            ods = ods.add(OrderDependency(source, target, flip))
    return ods


def random_context(rng):
    ctx = OrderContext.empty()
    for _ in range(rng.randint(0, 3)):
        first, second = rng.sample(POOL, 2)
        ctx = ctx.with_equality(first, second)
    for _ in range(rng.randint(0, 2)):
        ctx = ctx.with_constant(rng.choice(POOL))
    for _ in range(rng.randint(0, 2)):
        head = rng.sample(POOL, rng.randint(1, 2))
        tail = rng.sample(POOL, rng.randint(1, 3))
        ctx = ctx.with_fd(fd(head, tail))
    if rng.random() < 0.4:
        ctx = ctx.with_key(rng.sample(POOL, rng.randint(1, 2)))
    return ctx.with_ods(random_ods(rng))


def random_spec(rng):
    length = rng.randint(0, 4)
    columns = rng.sample(POOL, length) if length else []
    return OrderSpec(
        OrderKey(
            column,
            SortDirection.DESC if rng.random() < 0.3 else SortDirection.ASC,
        )
        for column in columns
    )


def assert_agreement(rng, ctx):
    spec = random_spec(rng)
    other = random_spec(rng)
    targets = frozenset(rng.sample(POOL, rng.randint(1, 6)))

    expected_reduce = reduce_order_reference(spec, ctx)
    expected_test = check_order_reference(spec, other, ctx)
    expected_cover = cover_order_reference(spec, other, ctx)
    expected_homogenize = homogenize_order_reference(spec, targets, ctx)

    # Twice each: first call populates the memo, second call reads it.
    for _ in range(2):
        assert reduce_order(spec, ctx) == expected_reduce
        assert check_order(spec, other, ctx) == expected_test
        assert cover_order(spec, other, ctx) == expected_cover
        assert homogenize_order(spec, targets, ctx) == expected_homogenize

    # The kill switch must not change answers either.
    with memoization_disabled():
        assert reduce_order(spec, ctx) == expected_reduce
        assert check_order(spec, other, ctx) == expected_test
        assert cover_order(spec, other, ctx) == expected_cover
        assert homogenize_order(spec, targets, ctx) == expected_homogenize


@pytest.mark.parametrize("seed", range(40))
def test_od_augmented_ops_match_reference(seed):
    clear_memos()
    rng = random.Random(seed)
    ctx = random_context(rng)
    for _ in range(6):
        assert_agreement(rng, ctx)


@pytest.mark.parametrize("seed", range(25))
def test_reduce_consumes_only_implied_fds(seed):
    """Replacing the OD set by just its implied FDs leaves reduction
    unchanged: Reduce is FD-only, the directional content of an OD is
    consumed by Test/Homogenize alone."""
    clear_memos()
    rng = random.Random(1000 + seed)
    with_ods = random_context(rng)
    # ``with_ods.fds`` already carries the folded implied FDs (the
    # constructor folds them), so rebuilding without the OD set is the
    # "same FDs, no directional facts" context.
    fd_only = OrderContext(
        equivalences=with_ods.equivalences,
        fds=with_ods.fds,
        constants=with_ods.constants,
    )
    assert fd_only.ods.is_empty()
    for _ in range(8):
        spec = random_spec(rng)
        assert reduce_order(spec, with_ods) == reduce_order(spec, fd_only)
        assert reduce_order(spec, fd_only) == reduce_order_reference(
            spec, fd_only
        )


def test_closure_flips_match_naive_bfs():
    """ODSet's cached closure agrees with brute-force BFS reachability
    on every pool pair, flip by flip."""
    for seed in range(30):
        rng = random.Random(2000 + seed)
        ods = random_ods(rng)
        for source in POOL:
            for target in POOL:
                expected = naive_od_flips(ods, source, target)
                assert set(ods.flips(source, target)) == expected, (
                    f"closure disagrees with BFS on {source} -> {target} "
                    f"under {ods!r}"
                )


def test_projected_edges_are_transitively_sound():
    """``projected`` keeps only in-scope columns but must not invent
    reachability: every surviving flip is BFS-derivable in the base."""
    for seed in range(20):
        rng = random.Random(3000 + seed)
        ods = random_ods(rng)
        keep = rng.sample(POOL, rng.randint(1, 4))
        projected = ods.projected(keep)
        for edge in projected:
            assert edge.source in keep and edge.target in keep
            assert edge.flip in naive_od_flips(ods, edge.source, edge.target)
        # And it must not lose reachability among kept columns.
        for source in keep:
            for target in keep:
                if source == target:
                    continue
                for flip in naive_od_flips(ods, source, target):
                    assert flip in naive_od_flips(projected, source, target)


class _LyingTest(dict):
    """A Test Order memo claiming every property satisfies everything —
    the cached form of a false order dependency."""

    def get(self, key, default=None):
        return True


def test_lying_od_cache_is_caught_and_shrunk(monkeypatch):
    """The differential matrix must catch a poisoned Test Order cache
    (sorts elided that the data needs) and shrink it to a tiny repro."""
    from repro.core import context as context_module
    from repro.core import memo as memo_module
    from repro.verify.gen import QueryGenerator, generate_schema
    from repro.verify.oracle import check_query, full_matrix
    from repro.verify.shrink import shrink

    def poisoned_memo_for(fingerprint):
        memo = memo_module.ContextMemo()
        memo.test = _LyingTest()
        return memo

    monkeypatch.setattr(context_module, "memo_for", poisoned_memo_for)
    try:
        schema = generate_schema(7)
        db = schema.build()
        generator = QueryGenerator(schema, 7)
        configs = full_matrix()

        failing = None
        for _ in range(40):
            spec = generator.generate()
            if spec.raw is not None:
                continue
            if check_query(db, spec.sql(), configs):
                failing = spec
                break
        assert failing is not None, (
            "lying Test Order cache produced no oracle mismatch in 40 "
            "queries — the differential oracle is not sensitive to a "
            "false order-dependency verdict"
        )

        result = shrink(schema, failing, configs)
        assert result.mismatches, "shrinker lost the failure"
        assert result.spec.clause_count() <= 3, (
            f"repro not minimal: {result.spec.clause_count()} clauses "
            f"({result.sql})"
        )
        case = result.pytest_case("test_emitted_repro")
        compile(case, "<emitted>", "exec")
    finally:
        clear_memos()
