"""Metamorphic pinning of the memoized algebra against naive oracles.

The indexed, memoized front doors (``reduce_order``, ``test_order``,
``cover_order``, ``homogenize_order``) must agree *exactly* with the
reference implementations in :mod:`repro.core.reference`, which run the
seed's algorithms — textbook closure over materialized pairwise
equivalence FDs, no head index, no memo tables — on every input.

We generate seeded random contexts (equivalences, constants, explicit
FDs, keys over a small column pool) and random specifications, and
compare on:

* fresh memo tables (every call a miss),
* warmed memo tables (every call a hit — the cached value must equal
  the recomputed one),
* the memoization kill switch (the indexed-but-unmemoized path).
"""

import random

import pytest

from repro.core import (
    clear_memos,
    cover_order,
    homogenize_order,
    memoization_disabled,
    reduce_order,
)
from repro.core import test_order as check_order
from repro.core.context import OrderContext
from repro.core.fd import fd
from repro.core.ordering import OrderKey, OrderSpec, SortDirection
from repro.core.reference import (
    cover_order_reference,
    homogenize_order_reference,
    reduce_order_reference,
)
from repro.core.reference import test_order_reference as check_order_reference
from repro.expr import col

POOL = [col(table, f"c{i}") for table in ("t", "u") for i in range(5)]


def random_context(rng):
    ctx = OrderContext.empty()
    for _ in range(rng.randint(0, 4)):
        first, second = rng.sample(POOL, 2)
        ctx = ctx.with_equality(first, second)
    for _ in range(rng.randint(0, 2)):
        ctx = ctx.with_constant(rng.choice(POOL))
    for _ in range(rng.randint(0, 3)):
        head = rng.sample(POOL, rng.randint(1, 2))
        tail = rng.sample(POOL, rng.randint(1, 3))
        ctx = ctx.with_fd(fd(head, tail))
    if rng.random() < 0.5:
        ctx = ctx.with_key(rng.sample(POOL, rng.randint(1, 2)))
    return ctx


def random_spec(rng):
    length = rng.randint(0, 5)
    columns = rng.sample(POOL, length) if length else []
    return OrderSpec(
        OrderKey(
            column,
            SortDirection.DESC if rng.random() < 0.3 else SortDirection.ASC,
        )
        for column in columns
    )


def assert_agreement(rng, ctx):
    spec = random_spec(rng)
    other = random_spec(rng)
    targets = frozenset(rng.sample(POOL, rng.randint(1, 6)))

    expected_reduce = reduce_order_reference(spec, ctx)
    expected_test = check_order_reference(spec, other, ctx)
    expected_cover = cover_order_reference(spec, other, ctx)
    expected_homogenize = homogenize_order_reference(spec, targets, ctx)

    # Twice each: first call populates the memo, second call reads it.
    for _ in range(2):
        assert reduce_order(spec, ctx) == expected_reduce
        assert check_order(spec, other, ctx) == expected_test
        assert cover_order(spec, other, ctx) == expected_cover
        assert homogenize_order(spec, targets, ctx) == expected_homogenize

    # The kill switch must not change answers either.
    with memoization_disabled():
        assert reduce_order(spec, ctx) == expected_reduce
        assert check_order(spec, other, ctx) == expected_test
        assert cover_order(spec, other, ctx) == expected_cover
        assert homogenize_order(spec, targets, ctx) == expected_homogenize


@pytest.mark.parametrize("seed", range(40))
def test_memoized_ops_match_reference(seed):
    clear_memos()
    rng = random.Random(seed)
    ctx = random_context(rng)
    for _ in range(6):
        assert_agreement(rng, ctx)


def test_shared_fingerprint_context_cannot_poison_results():
    """Two content-equal contexts share memo tables; a third, different
    context must not see their cached answers."""
    clear_memos()
    rng = random.Random(1234)
    base = random_context(rng)
    twin = OrderContext(
        equivalences=base.equivalences,
        fds=base.fds,
        constants=base.constants,
    )
    assert base.fingerprint() == twin.fingerprint()
    spec = random_spec(rng)
    assert reduce_order(spec, base) == reduce_order(spec, twin)
    assert reduce_order(spec, twin) == reduce_order_reference(spec, twin)

    different = base.with_constant(POOL[0]).with_equality(POOL[1], POOL[2])
    assert reduce_order(spec, different) == reduce_order_reference(
        spec, different
    )
