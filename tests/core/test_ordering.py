"""OrderSpec / OrderKey basics."""

import pytest

from repro.core.ordering import OrderKey, OrderSpec, SortDirection, asc, desc
from repro.errors import OrderError
from repro.expr import col

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")


class TestOrderKey:
    def test_default_direction_is_ascending(self):
        assert OrderKey(X).direction is SortDirection.ASC

    def test_reversed_flips_direction(self):
        assert asc(X).reversed() == desc(X)
        assert desc(X).reversed() == asc(X)

    def test_with_column_keeps_direction(self):
        assert desc(X).with_column(Y) == desc(Y)

    def test_str_marks_descending_only(self):
        assert str(asc(X)) == "t.x"
        assert str(desc(X)) == "t.x desc"


class TestOrderSpec:
    def test_of_builds_ascending(self):
        spec = OrderSpec.of(X, Y)
        assert spec.columns == (X, Y)
        assert all(key.direction is SortDirection.ASC for key in spec)

    def test_empty_spec(self):
        spec = OrderSpec()
        assert spec.is_empty()
        assert not spec
        assert len(spec) == 0

    def test_duplicate_column_rejected(self):
        with pytest.raises(OrderError):
            OrderSpec.of(X, X)

    def test_head_of_empty_raises(self):
        with pytest.raises(OrderError):
            OrderSpec().head()

    def test_prefix_relation(self):
        shorter = OrderSpec.of(X)
        longer = OrderSpec.of(X, Y)
        assert shorter.is_prefix_of(longer)
        assert not longer.is_prefix_of(shorter)
        assert OrderSpec().is_prefix_of(shorter)

    def test_prefix_requires_matching_directions(self):
        assert not OrderSpec((desc(X),)).is_prefix_of(OrderSpec.of(X, Y))

    def test_concat_skips_duplicates(self):
        merged = OrderSpec.of(X, Y).concat(OrderSpec.of(Y, Z))
        assert merged == OrderSpec.of(X, Y, Z)

    def test_reversed_flips_every_key(self):
        spec = OrderSpec((asc(X), desc(Y)))
        assert spec.reversed() == OrderSpec((desc(X), asc(Y)))

    def test_equality_and_hash(self):
        assert OrderSpec.of(X, Y) == OrderSpec.of(X, Y)
        assert hash(OrderSpec.of(X, Y)) == hash(OrderSpec.of(X, Y))
        assert OrderSpec.of(X, Y) != OrderSpec.of(Y, X)

    def test_subset_columns(self):
        spec = OrderSpec.of(X, Y)
        assert spec.subset_columns({X, Y, Z})
        assert not spec.subset_columns({X})

    def test_prefix_method(self):
        assert OrderSpec.of(X, Y, Z).prefix(2) == OrderSpec.of(X, Y)

    def test_indexing_and_iteration(self):
        spec = OrderSpec.of(X, Y)
        assert spec[0] == asc(X)
        assert list(spec) == [asc(X), asc(Y)]

    def test_str_rendering(self):
        assert str(OrderSpec((asc(X), desc(Y)))) == "(t.x, t.y desc)"
