"""Functional dependencies and attribute closure."""

import pytest

from repro.core.fd import (
    ALL_COLUMNS,
    FDSet,
    FunctionalDependency,
    constant_fd,
    fd,
    key_fd,
)
from repro.errors import OrderError
from repro.expr import col

A, B, C, D = col("t", "a"), col("t", "b"), col("t", "c"), col("t", "d")


class TestFunctionalDependency:
    def test_empty_headed(self):
        assert constant_fd(A).is_empty_headed()
        assert not fd([A], [B]).is_empty_headed()

    def test_key_fd_determines_all(self):
        assert key_fd([A]).determines_all()
        assert not fd([A], [B]).determines_all()

    def test_bad_tail_rejected(self):
        with pytest.raises(OrderError):
            FunctionalDependency(frozenset([A]), [B])  # list, not frozenset

    def test_str(self):
        assert str(fd([A], [B])) == "{t.a} -> {t.b}"
        assert str(key_fd([A])) == "{t.a} -> *"


class TestClosure:
    def test_reflexive(self):
        closure = FDSet().closure([A])
        assert A in closure
        assert B not in closure

    def test_transitive_chain(self):
        fds = FDSet([fd([A], [B]), fd([B], [C])])
        closure = fds.closure([A])
        assert B in closure and C in closure

    def test_compound_head_requires_all(self):
        fds = FDSet([fd([A, B], [C])])
        assert C not in fds.closure([A])
        assert C in fds.closure([A, B])

    def test_empty_headed_always_fires(self):
        fds = FDSet([constant_fd(A)])
        assert A in fds.closure([])

    def test_key_fd_closure_determines_everything(self):
        fds = FDSet([key_fd([A])])
        closure = fds.closure([A])
        assert closure.determines_everything
        assert D in closure  # any column whatsoever

    def test_determines(self):
        fds = FDSet([fd([A], [B])])
        assert fds.determines([A], B)
        assert not fds.determines([B], A)

    def test_implies(self):
        fds = FDSet([fd([A], [B]), fd([B], [C])])
        assert fds.implies(fd([A], [C]))
        assert fds.implies(fd([A, D], [C]))  # augmentation
        assert not fds.implies(fd([C], [A]))
        assert not fds.implies(key_fd([A]))

    def test_implies_key(self):
        fds = FDSet([key_fd([A])])
        assert fds.implies(key_fd([A]))
        assert fds.implies(fd([A], [B, C, D]))


class TestFDSet:
    def test_add_is_persistent(self):
        base = FDSet()
        extended = base.add(fd([A], [B]))
        assert len(base) == 0
        assert len(extended) == 1

    def test_add_deduplicates(self):
        fds = FDSet([fd([A], [B])]).add(fd([A], [B]))
        assert len(fds) == 1

    def test_union(self):
        left = FDSet([fd([A], [B])])
        right = FDSet([fd([B], [C]), fd([A], [B])])
        union = left.union(right)
        assert len(union) == 2
        assert union.determines([A], C)
