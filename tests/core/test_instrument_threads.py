"""Thread-safety of the instrument registry (service worker pools)."""

import threading

from repro.core import instrument


def test_concurrent_increments_are_not_lost():
    instrument.reset()
    rounds = 25_000

    def work():
        counters = instrument.COUNTERS
        for _ in range(rounds):
            counters["smoke.increments"] = (
                counters.get("smoke.increments", 0) + 1
            )
        with instrument.timed("smoke.body"):
            pass

    threads = [threading.Thread(target=work) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    merged = instrument.snapshot()
    assert merged["smoke.increments"] == 2 * rounds
    assert merged["smoke.body_s"] >= 0.0
    instrument.reset()
    assert instrument.snapshot().get("smoke.increments", 0) == 0


def test_registry_reads_are_thread_local():
    instrument.reset()
    seen_in_thread = {}

    def work():
        instrument.count("smoke.local")
        seen_in_thread["value"] = instrument.COUNTERS.get("smoke.local", 0)

    thread = threading.Thread(target=work)
    thread.start()
    thread.join()

    # The worker saw its own slice; this thread's slice is untouched,
    # and the merged view has the total.
    assert seen_in_thread["value"] == 1
    assert instrument.COUNTERS.get("smoke.local", 0) == 0
    assert instrument.snapshot()["smoke.local"] == 1
    instrument.reset()
