"""Data-level soundness of Homogenize Order (Figure 5).

The paper's claim: homogenization produces an order that *eventually*
satisfies the original — once the equivalence-generating predicates have
been applied. We model that directly: generate a joined dataset on which
``x = y`` pairs hold (as after applying the join predicates), homogenize
a specification across the equivalences, and verify that sorting the
joined data by the homogenized order also sorts it by the original.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core import OrderContext, OrderSpec, homogenize_order
from repro.core.homogenize import homogenize_prefix
from repro.core.ordering import OrderKey, SortDirection
from repro.expr import col
from repro.sqltypes import sort_key

# Outer table columns a0..a2, inner table columns b0..b2; the join
# equates a_i = b_i for a generated subset of i.
OUTER = [col("a", f"c{i}") for i in range(3)]
INNER = [col("b", f"c{i}") for i in range(3)]
ALL = OUTER + INNER


@st.composite
def joined_dataset(draw):
    """(rows over ALL, context, equated positions)."""
    row_count = draw(st.integers(min_value=0, max_value=20))
    equated = draw(
        st.sets(st.integers(min_value=0, max_value=2), min_size=1)
    )
    rows: List[tuple] = []
    for _ in range(row_count):
        outer_values = [
            draw(st.integers(min_value=0, max_value=4)) for _ in range(3)
        ]
        inner_values = [
            draw(st.integers(min_value=0, max_value=4)) for _ in range(3)
        ]
        for position in equated:
            inner_values[position] = outer_values[position]
        rows.append(tuple(outer_values + inner_values))
    context = OrderContext.empty()
    for position in equated:
        context = context.with_equality(OUTER[position], INNER[position])
    return rows, context, equated


@st.composite
def mixed_specs(draw, equated):
    """An order spec over columns homogenizable to the inner side."""
    length = draw(st.integers(min_value=1, max_value=3))
    positions = draw(st.permutations(sorted(equated)))
    keys = []
    for position in list(positions)[:length]:
        side = draw(st.booleans())
        column = OUTER[position] if side else INNER[position]
        direction = (
            SortDirection.DESC if draw(st.booleans()) else SortDirection.ASC
        )
        keys.append(OrderKey(column, direction))
    return OrderSpec(keys)


def comparator(spec: OrderSpec):
    positions = {column: index for index, column in enumerate(ALL)}

    def key_of(row):
        return tuple(
            sort_key(
                row[positions[key.column]],
                key.direction is SortDirection.DESC,
            )
            for key in spec
        )

    return key_of


def is_sorted_by(rows, spec: OrderSpec) -> bool:
    key_of = comparator(spec)
    keys = [key_of(row) for row in rows]
    return all(a <= b for a, b in zip(keys, keys[1:]))


@settings(max_examples=120, deadline=None)
@given(joined_dataset().flatmap(
    lambda data: st.tuples(st.just(data), mixed_specs(data[2]))
))
def test_homogenized_order_satisfies_original(payload):
    (rows, context, _equated), spec = payload
    homogenized = homogenize_order(spec, INNER, context)
    if homogenized is None:
        return
    assert homogenized.subset_columns(INNER)
    ordered = sorted(rows, key=comparator(homogenized))
    assert is_sorted_by(ordered, spec), (
        f"sorting by {homogenized} does not satisfy {spec}"
    )


@settings(max_examples=120, deadline=None)
@given(joined_dataset().flatmap(
    lambda data: st.tuples(st.just(data), mixed_specs(data[2]))
))
def test_homogenize_prefix_is_prefix_sound(payload):
    (rows, context, _equated), spec = payload
    prefix = homogenize_prefix(spec, INNER, context)
    if prefix.is_empty():
        return
    # The prefix must satisfy the corresponding prefix of the reduced
    # original: sorting by it sorts the data by the original's head.
    head = OrderSpec(spec.keys[:1])
    ordered = sorted(rows, key=comparator(prefix))
    assert is_sorted_by(ordered, head)


@settings(max_examples=80, deadline=None)
@given(joined_dataset())
def test_homogenization_to_unrelated_columns_fails_cleanly(data):
    rows, context, equated = data
    free = [index for index in range(3) if index not in equated]
    if not free:
        return
    spec = OrderSpec.of(OUTER[free[0]])
    assert homogenize_order(spec, INNER, context) is None
