"""Cover Order (Figure 4)."""

from repro.core import OrderContext, OrderSpec, cover_order
from repro.core import test_order as check_order
from repro.core.cover import cover_order_naive as naive_cover
from repro.expr import col
from repro.expr.nodes import Comparison, ComparisonOp, Literal

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")


def eq_const(column, value):
    return Comparison(ComparisonOp.EQ, column, Literal(value))


class TestCoverOrder:
    def test_prefix_cover(self):
        """§4.3: cover of (x) and (x, y) is (x, y)."""
        cover = cover_order(
            OrderSpec.of(X), OrderSpec.of(X, Y), OrderContext.empty()
        )
        assert cover == OrderSpec.of(X, Y)

    def test_cover_is_symmetric(self):
        context = OrderContext.empty()
        assert cover_order(
            OrderSpec.of(X, Y), OrderSpec.of(X), context
        ) == cover_order(OrderSpec.of(X), OrderSpec.of(X, Y), context)

    def test_impossible_cover(self):
        """§4.3: no cover for (y, x) and (x, y, z)."""
        assert (
            cover_order(
                OrderSpec.of(Y, X), OrderSpec.of(X, Y, Z), OrderContext.empty()
            )
            is None
        )

    def test_predicate_enables_cover(self):
        """§4.3: with x = 10 applied, (y, x) and (x, y, z) reduce to (y)
        and (y, z), giving cover (y, z)."""
        context = OrderContext.from_predicates([eq_const(X, 10)])
        cover = cover_order(
            OrderSpec.of(Y, X), OrderSpec.of(X, Y, Z), context
        )
        assert cover == OrderSpec.of(Y, Z)

    def test_cover_satisfies_both_inputs(self):
        context = OrderContext.from_predicates([eq_const(X, 10)])
        first, second = OrderSpec.of(Y, X), OrderSpec.of(X, Y, Z)
        cover = cover_order(first, second, context)
        assert check_order(first, cover, context)
        assert check_order(second, cover, context)

    def test_empty_covers_to_other(self):
        cover = cover_order(
            OrderSpec(), OrderSpec.of(X), OrderContext.empty()
        )
        assert cover == OrderSpec.of(X)

    def test_identical_inputs(self):
        spec = OrderSpec.of(X, Y)
        assert cover_order(spec, spec, OrderContext.empty()) == spec


class TestNaiveCover:
    def test_prefix_works(self):
        assert naive_cover(
            OrderSpec.of(X), OrderSpec.of(X, Y)
        ) == OrderSpec.of(X, Y)

    def test_no_reduction(self):
        # Without reduction the §4.3 example stays impossible even with
        # the predicate notionally applied.
        assert naive_cover(OrderSpec.of(Y, X), OrderSpec.of(X, Y, Z)) is None
