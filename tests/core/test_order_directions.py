"""DESC and mixed-direction orders through Reduce/Test/Cover.

The paper's prose assumes ascending "without loss of generality"
(§4.2); the implementation carries directions explicitly, so every
Figure-2/3/4 behavior must hold with DESC and mixed-direction keys too.
These were previously only exercised indirectly via TPC-D Q3's single
``rev desc`` key.
"""

from repro.core import OrderContext, cover_order, reduce_order
from repro.core import test_order as check_order
from repro.core.fd import fd
from repro.core.ordering import SortDirection, asc, desc, spec
from repro.expr import col
from repro.expr.nodes import Comparison, ComparisonOp, Literal

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")


def eq_const(column, value):
    return Comparison(ComparisonOp.EQ, column, Literal(value))


def eq_cols(left, right):
    return Comparison(ComparisonOp.EQ, left, right)


class TestReduceWithDirections:
    def test_constant_removal_keeps_desc_suffix(self):
        """§4.1 constant binding, descending flavor: (x desc, y desc)
        with x = 10 reduces to (y desc) — direction survives."""
        context = OrderContext.from_predicates([eq_const(X, 10)])
        assert reduce_order(spec(desc(X), desc(Y)), context) == spec(desc(Y))

    def test_equivalence_rewrite_preserves_direction(self):
        context = OrderContext.from_predicates([eq_cols(X, Y)])
        reduced = reduce_order(spec(desc(X), asc(Z)), context)
        assert [key.direction for key in reduced] == [
            SortDirection.DESC,
            SortDirection.ASC,
        ]
        # Both spellings of the class land on the same reduced form.
        assert reduced == reduce_order(spec(desc(Y), asc(Z)), context)

    def test_key_truncates_mixed_direction_suffix(self):
        """§4.1/§4.2: x a key ⇒ (x desc, y asc) reduces to (x desc)."""
        context = OrderContext(fds=None).with_key([X])
        assert reduce_order(spec(desc(X), asc(Y)), context) == spec(desc(X))

    def test_fd_removal_ignores_directions(self):
        """FD-based removal is direction-blind: x → y drops y from
        (x desc, y asc, z desc) leaving (x desc, z desc)."""
        context = OrderContext(fds=None).with_fd(fd([X], [Y]))
        assert reduce_order(
            spec(desc(X), asc(Y), desc(Z)), context
        ) == spec(desc(X), desc(Z))

    def test_asc_and_desc_specs_stay_distinct(self):
        context = OrderContext.empty()
        assert reduce_order(spec(desc(X)), context) != reduce_order(
            spec(asc(X)), context
        )


class TestTestOrderWithDirections:
    def test_descending_prefix_satisfaction(self):
        """§4.2: OP = (x desc, y) satisfies I = (x desc) — prefix
        satisfaction holds per-key on (column, direction) pairs."""
        assert check_order(
            spec(desc(X)), spec(desc(X), asc(Y)), OrderContext.empty()
        )

    def test_descending_prefix_satisfaction_after_reduction(self):
        """§4.2 with reduction: x a key ⇒ I = (x desc, y desc) reduces
        to (x desc), satisfied by OP = (x desc, z)."""
        context = OrderContext(fds=None).with_key([X])
        assert check_order(
            spec(desc(X), desc(Y)), spec(desc(X), asc(Z)), context
        )

    def test_mixed_direction_exact_prefix(self):
        assert check_order(
            spec(asc(X), desc(Y)),
            spec(asc(X), desc(Y), asc(Z)),
            OrderContext.empty(),
        )

    def test_direction_mismatch_fails_each_position(self):
        empty = OrderContext.empty()
        assert not check_order(spec(desc(X)), spec(asc(X)), empty)
        assert not check_order(
            spec(asc(X), asc(Y)), spec(asc(X), desc(Y)), empty
        )

    def test_direction_mismatch_fails_even_with_context(self):
        """Reduction rewrites columns, never directions: x = y makes the
        columns interchangeable but (x desc) still conflicts with an
        ascending property."""
        context = OrderContext.from_predicates([eq_cols(X, Y)])
        assert not check_order(spec(desc(X)), spec(asc(Y)), context)
        assert check_order(spec(desc(X)), spec(desc(Y)), context)


class TestCoverWithDirections:
    def test_cover_of_mixed_direction_prefix(self):
        cover = cover_order(
            spec(desc(X)), spec(desc(X), asc(Y)), OrderContext.empty()
        )
        assert cover == spec(desc(X), asc(Y))

    def test_no_cover_for_conflicting_directions(self):
        assert (
            cover_order(spec(asc(X)), spec(desc(X)), OrderContext.empty())
            is None
        )
        assert (
            cover_order(
                spec(asc(X), asc(Y)),
                spec(asc(X), desc(Y)),
                OrderContext.empty(),
            )
            is None
        )

    def test_cover_after_fd_reduction_keeps_directions(self):
        """With x → y, (x desc, y asc, z desc) and (x desc, z desc) both
        reduce to (x desc, z desc); the cover is that reduced form."""
        context = OrderContext(fds=None).with_fd(fd([X], [Y]))
        cover = cover_order(
            spec(desc(X), asc(Y), desc(Z)), spec(desc(X), desc(Z)), context
        )
        assert cover == spec(desc(X), desc(Z))

    def test_reversed_spec_roundtrip(self):
        mixed = spec(asc(X), desc(Y))
        assert mixed.reversed() == spec(desc(X), asc(Y))
        assert mixed.reversed().reversed() == mixed
