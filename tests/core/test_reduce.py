"""Reduce Order (Figure 2) — including every worked example in §4.1."""

from repro.core import OrderContext, OrderSpec, reduce_order
from repro.core.fd import fd, key_fd
from repro.core.ordering import OrderKey, SortDirection, desc
from repro.core.reduce import minimal_sort_columns
from repro.expr import col
from repro.expr.nodes import Comparison, ComparisonOp, Literal

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")
AX, BX, BY = col("a", "x"), col("b", "x"), col("b", "y")


def eq_const(column, value):
    return Comparison(ComparisonOp.EQ, column, Literal(value))


def eq_cols(left, right):
    return Comparison(ComparisonOp.EQ, left, right)


class TestPaperExamples:
    def test_constant_binding_removes_column(self):
        """§4.1: I = (x, y), predicate x = 10 ⇒ I reduces to (y)."""
        context = OrderContext.from_predicates([eq_const(X, 10)])
        assert reduce_order(OrderSpec.of(X, Y), context) == OrderSpec.of(Y)

    def test_equivalence_class_rewrites_head(self):
        """§4.1: I = (x, z), OP = (y, z), predicate x = y ⇒ equal after
        rewriting to class heads."""
        context = OrderContext.from_predicates([eq_cols(X, Y)])
        reduced_interesting = reduce_order(OrderSpec.of(X, Z), context)
        reduced_property = reduce_order(OrderSpec.of(Y, Z), context)
        assert reduced_interesting == reduced_property

    def test_key_makes_suffix_redundant(self):
        """§4.1: I = (x, y), OP = (x, z), x a key ⇒ both reduce to (x)."""
        context = OrderContext(fds=None).with_key([X])
        assert reduce_order(OrderSpec.of(X, Y), context) == OrderSpec.of(X)
        assert reduce_order(OrderSpec.of(X, Z), context) == OrderSpec.of(X)

    def test_reduction_to_empty(self):
        """§4.1: I = (x) with x = 10 applied reduces to the empty order."""
        context = OrderContext.from_predicates([eq_const(X, 10)])
        assert reduce_order(OrderSpec.of(X), context).is_empty()


class TestReduceMechanics:
    def test_no_context_is_identity(self):
        spec = OrderSpec.of(X, Y, Z)
        assert reduce_order(spec, OrderContext.empty()) == spec

    def test_fd_removes_determined_column(self):
        context = OrderContext(fds=None).with_fd(fd([X], [Y]))
        assert reduce_order(OrderSpec.of(X, Y, Z), context) == OrderSpec.of(X, Z)

    def test_fd_with_compound_head(self):
        context = OrderContext(fds=None).with_fd(fd([X, Y], [Z]))
        assert reduce_order(OrderSpec.of(X, Y, Z), context) == OrderSpec.of(X, Y)
        # Not removable when only part of the head precedes it.
        assert reduce_order(OrderSpec.of(X, Z), context) == OrderSpec.of(X, Z)

    def test_transitive_fd_removal(self):
        context = (
            OrderContext(fds=None)
            .with_fd(fd([X], [Y]))
            .with_fd(fd([Y], [Z]))
        )
        assert reduce_order(OrderSpec.of(X, Z), context) == OrderSpec.of(X)

    def test_direction_preserved_through_rewrite(self):
        context = OrderContext.empty().with_equality(BX, AX)
        reduced = reduce_order(OrderSpec((desc(BX),)), context)
        assert reduced == OrderSpec((desc(AX),))

    def test_duplicate_after_head_rewrite_collapses(self):
        # x and y become the same class; (x, y) collapses to one column.
        context = OrderContext.empty().with_equality(X, Y)
        reduced = reduce_order(OrderSpec.of(X, Y), context)
        assert len(reduced) == 1

    def test_constant_via_equivalence(self):
        # x = y and y = 5 makes x constant too.
        context = (
            OrderContext.from_predicates([eq_cols(X, Y), eq_const(Y, 5)])
        )
        assert reduce_order(OrderSpec.of(X, Z), context) == OrderSpec.of(Z)

    def test_key_anywhere_truncates_rest(self):
        context = OrderContext.empty().with_key([Y])
        reduced = reduce_order(OrderSpec.of(X, Y, Z), context)
        assert reduced == OrderSpec.of(X, Y)

    def test_one_record_reduces_everything(self):
        context = OrderContext.empty().with_key([])  # {} -> * (one record)
        assert reduce_order(OrderSpec.of(X, Y, Z), context).is_empty()

    def test_minimal_sort_columns_alias(self):
        context = OrderContext.from_predicates([eq_const(X, 1)])
        assert minimal_sort_columns(
            OrderSpec.of(X, Y), context
        ) == OrderSpec.of(Y)

    def test_reduction_is_idempotent(self):
        context = (
            OrderContext.from_predicates([eq_cols(X, Y), eq_const(Z, 3)])
            .with_fd(fd([X], [Z]))
        )
        once = reduce_order(OrderSpec.of(Z, Y, X), context)
        assert reduce_order(once, context) == once
