"""Equivalence classes (union-find with stable heads)."""

from repro.core.equivalence import EquivalenceClasses
from repro.expr import col

AX, AY = col("a", "x"), col("a", "y")
BX, BY = col("b", "x"), col("b", "y")
CX = col("c", "x")


class TestEquivalenceClasses:
    def test_unknown_column_is_its_own_head(self):
        eq = EquivalenceClasses()
        assert eq.head(AX) == AX
        assert eq.members(AX) == frozenset((AX,))

    def test_single_equality(self):
        eq = EquivalenceClasses([(AX, BX)])
        assert eq.are_equivalent(AX, BX)
        assert eq.head(AX) == eq.head(BX)

    def test_head_is_lexicographically_smallest(self):
        eq = EquivalenceClasses([(BX, AX)])
        assert eq.head(BX) == AX

    def test_transitive_merge(self):
        eq = EquivalenceClasses([(AX, BX), (BX, CX)])
        assert eq.are_equivalent(AX, CX)
        assert eq.members(AX) == frozenset((AX, BX, CX))

    def test_head_insertion_order_independent(self):
        one = EquivalenceClasses([(AX, BX), (BX, CX)])
        two = EquivalenceClasses([(CX, BX), (BX, AX)])
        assert one.head(CX) == two.head(CX) == AX

    def test_distinct_classes_stay_apart(self):
        eq = EquivalenceClasses([(AX, BX), (AY, BY)])
        assert not eq.are_equivalent(AX, AY)
        assert len(eq.classes()) == 2

    def test_merged_with(self):
        left = EquivalenceClasses([(AX, BX)])
        right = EquivalenceClasses([(BX, CX)])
        merged = left.merged_with(right)
        assert merged.are_equivalent(AX, CX)
        # Inputs untouched.
        assert not left.are_equivalent(AX, CX)

    def test_copy_is_independent(self):
        eq = EquivalenceClasses([(AX, BX)])
        duplicate = eq.copy()
        duplicate.add_equality(AX, CX)
        assert duplicate.are_equivalent(AX, CX)
        assert not eq.are_equivalent(AX, CX)

    def test_self_equality_is_noop(self):
        eq = EquivalenceClasses()
        eq.add_equality(AX, AX)
        assert eq.members(AX) == frozenset((AX,))
        assert eq.classes() == []

    def test_are_equivalent_same_column(self):
        assert EquivalenceClasses().are_equivalent(AX, AX)
