"""General (degrees-of-freedom) orders — Section 7."""

import pytest

from repro.core import GeneralOrderSpec, OrderContext, OrderSpec
from repro.core.fd import fd
from repro.core.general import OrderSegment
from repro.core.ordering import OrderKey, SortDirection, asc, desc
from repro.errors import OrderError
from repro.expr import col

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")
W = col("t", "w")


class TestSegments:
    def test_fixed_segment_invariant(self):
        with pytest.raises(OrderError):
            OrderSegment(frozenset((X, Y)), asc(X))

    def test_free_segment_needs_columns(self):
        with pytest.raises(OrderError):
            OrderSegment.free([])


class TestSixteenOrders:
    """The paper's example: GROUP BY x, y with SUM(DISTINCT z) admits
    exactly sixteen orders."""

    def test_enumerates_sixteen(self):
        general = GeneralOrderSpec.from_group_by_with_distinct_agg([X, Y], Z)
        orders = general.enumerate_orders(limit=100)
        assert len(orders) == 16
        assert len(set(orders)) == 16

    def test_every_enumerated_order_satisfies(self):
        general = GeneralOrderSpec.from_group_by_with_distinct_agg([X, Y], Z)
        context = OrderContext.empty()
        for order in general.enumerate_orders(limit=100):
            assert general.satisfied_by(order, context)

    def test_wrong_segment_order_fails(self):
        general = GeneralOrderSpec.from_group_by_with_distinct_agg([X, Y], Z)
        # z before the {x, y} segment is exhausted.
        assert not general.satisfied_by(
            OrderSpec.of(X, Z, Y), OrderContext.empty()
        )


class TestSatisfaction:
    def test_any_permutation_any_direction(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        context = OrderContext.empty()
        assert general.satisfied_by(OrderSpec.of(X, Y), context)
        assert general.satisfied_by(OrderSpec.of(Y, X), context)
        assert general.satisfied_by(OrderSpec((desc(Y), asc(X))), context)

    def test_missing_column_fails(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        assert not general.satisfied_by(OrderSpec.of(X), OrderContext.empty())

    def test_foreign_column_interrupting_fails(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        assert not general.satisfied_by(
            OrderSpec.of(X, Z, Y), OrderContext.empty()
        )

    def test_fd_shrinks_requirement(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        context = OrderContext.empty().with_fd(fd([X], [Y]))
        assert general.satisfied_by(OrderSpec.of(X), context)

    def test_constant_column_auto_satisfied(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        context = OrderContext.empty().with_constant(X)
        assert general.satisfied_by(OrderSpec.of(Y), context)

    def test_equivalence_mapping(self):
        other = col("u", "x")
        general = GeneralOrderSpec.from_group_by([X])
        context = OrderContext.empty().with_equality(X, other)
        assert general.satisfied_by(OrderSpec.of(other), context)

    def test_fixed_segment_direction_enforced(self):
        general = GeneralOrderSpec.from_spec(OrderSpec((desc(X),)))
        assert general.satisfied_by(OrderSpec((desc(X),)), OrderContext.empty())
        assert not general.satisfied_by(OrderSpec.of(X), OrderContext.empty())

    def test_empty_general_satisfied_by_anything(self):
        general = GeneralOrderSpec.from_group_by([])
        assert general.satisfied_by(OrderSpec(), OrderContext.empty())


class TestConcrete:
    def test_concrete_satisfies_itself(self):
        general = GeneralOrderSpec.from_group_by([Y, X, Z])
        context = OrderContext.empty()
        concrete = general.concrete(context)
        assert general.satisfied_by(concrete, context)

    def test_concrete_is_deterministic(self):
        general = GeneralOrderSpec.from_group_by([Z, X, Y])
        one = general.concrete(OrderContext.empty())
        two = general.concrete(OrderContext.empty())
        assert one == two

    def test_concrete_drops_fd_redundant_columns(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        context = OrderContext.empty().with_fd(fd([X], [Y]))
        assert general.concrete(context) == OrderSpec.of(X)

    def test_hint_biases_column_order_and_direction(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        hint = OrderSpec((desc(Y),))
        concrete = general.concrete(OrderContext.empty(), hint=hint)
        assert concrete.head() == desc(Y)


class TestAlignedWith:
    def test_alignment_with_prefix_order_by(self):
        """Figure 6's situation: GROUP BY {x, y} aligned with ORDER BY
        (x) yields one order satisfying both."""
        general = GeneralOrderSpec.from_group_by([X, Y])
        context = OrderContext.empty()
        aligned = general.aligned_with(OrderSpec.of(X), context)
        assert aligned is not None
        assert aligned.head() == asc(X)
        assert general.satisfied_by(aligned, context)
        assert OrderSpec.of(X).is_prefix_of(aligned)

    def test_alignment_fails_on_foreign_leading_column(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        aligned = general.aligned_with(OrderSpec.of(Z), OrderContext.empty())
        assert aligned is None

    def test_alignment_with_longer_order_by(self):
        # ORDER BY covers the group columns and goes beyond: the longer
        # order satisfies both.
        general = GeneralOrderSpec.from_group_by([X])
        aligned = general.aligned_with(
            OrderSpec.of(X, Z), OrderContext.empty()
        )
        assert aligned == OrderSpec.of(X, Z)

    def test_alignment_respects_hint_directions(self):
        general = GeneralOrderSpec.from_group_by([X, Y])
        aligned = general.aligned_with(
            OrderSpec((desc(X),)), OrderContext.empty()
        )
        assert aligned is not None
        assert aligned.head() == desc(X)
