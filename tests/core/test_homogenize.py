"""Homogenize Order (Figure 5)."""

from repro.core import (
    OrderContext,
    OrderSpec,
    homogenize_order,
    homogenize_prefix,
)
from repro.core.fd import fd
from repro.core.ordering import desc
from repro.expr import col

AX, AY = col("a", "x"), col("a", "y")
BX, BY = col("b", "x"), col("b", "y")


class TestHomogenizeOrder:
    def test_paper_join_example(self):
        """§4.4: order by a.x, b.y with a.x = b.x homogenizes to table b
        as (b.x, b.y)."""
        context = OrderContext.empty().with_equality(AX, BX)
        result = homogenize_order(
            OrderSpec.of(AX, BY), [BX, BY], context
        )
        assert result == OrderSpec.of(BX, BY)

    def test_paper_key_example(self):
        """§4.4: (a.x, b.y) cannot reach table a directly, but with
        {a.x} -> {b.y} it reduces to (a.x) first."""
        context = OrderContext.empty()
        assert homogenize_order(OrderSpec.of(AX, BY), [AX, AY], context) is None
        with_fd = context.with_fd(fd([AX], [BY]))
        assert homogenize_order(
            OrderSpec.of(AX, BY), [AX, AY], with_fd
        ) == OrderSpec.of(AX)

    def test_identity_when_columns_present(self):
        spec = OrderSpec.of(AX, AY)
        assert homogenize_order(spec, [AX, AY], OrderContext.empty()) == spec

    def test_direction_preserved(self):
        context = OrderContext.empty().with_equality(AX, BX)
        result = homogenize_order(OrderSpec((desc(AX),)), [BX], context)
        assert result == OrderSpec((desc(BX),))

    def test_untranslatable_column_fails(self):
        assert (
            homogenize_order(OrderSpec.of(AX), [BY], OrderContext.empty())
            is None
        )

    def test_deterministic_choice_among_candidates(self):
        # a.x = b.x = b.y: both b columns qualify; the lexicographically
        # first is chosen so plans are reproducible.
        context = (
            OrderContext.empty()
            .with_equality(AX, BX)
            .with_equality(BX, BY)
        )
        result = homogenize_order(OrderSpec.of(AX), [BX, BY], context)
        assert result == OrderSpec.of(BX)

    def test_collapsing_substitution(self):
        # Both a.x and a.y map to the same b column: dedupe, keep first.
        context = (
            OrderContext.empty()
            .with_equality(AX, BX)
            .with_equality(AY, BX)
        )
        result = homogenize_order(OrderSpec.of(AX, AY), [BX], context)
        assert result == OrderSpec.of(BX)


class TestHomogenizePrefix:
    def test_full_when_possible(self):
        context = OrderContext.empty().with_equality(AX, BX)
        assert homogenize_prefix(
            OrderSpec.of(AX), [BX], context
        ) == OrderSpec.of(BX)

    def test_largest_prefix(self):
        """§5.1: push the largest homogenizable prefix optimistically."""
        context = OrderContext.empty().with_equality(AX, BX)
        result = homogenize_prefix(OrderSpec.of(AX, AY), [BX, BY], context)
        assert result == OrderSpec.of(BX)

    def test_empty_when_head_fails(self):
        result = homogenize_prefix(
            OrderSpec.of(AY, AX), [BX], OrderContext.empty()
        )
        assert result.is_empty()
