"""Test Order (Figure 3) and the naive variant."""

from repro.core import OrderContext, OrderSpec
from repro.core import test_order as check_order
from repro.core.ordering import desc
from repro.core.test import test_order_naive as check_order_naive
from repro.expr import col
from repro.expr.nodes import Comparison, ComparisonOp, Literal

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")


def eq_const(column, value):
    return Comparison(ComparisonOp.EQ, column, Literal(value))


class TestTestOrder:
    def test_empty_interesting_order_always_satisfied(self):
        assert check_order(OrderSpec(), OrderSpec(), OrderContext.empty())
        assert check_order(OrderSpec(), OrderSpec.of(X), OrderContext.empty())

    def test_exact_match(self):
        assert check_order(
            OrderSpec.of(X, Y), OrderSpec.of(X, Y), OrderContext.empty()
        )

    def test_prefix_satisfies(self):
        assert check_order(
            OrderSpec.of(X), OrderSpec.of(X, Y), OrderContext.empty()
        )

    def test_longer_than_property_fails(self):
        assert not check_order(
            OrderSpec.of(X, Y), OrderSpec.of(X), OrderContext.empty()
        )

    def test_direction_mismatch_fails(self):
        assert not check_order(
            OrderSpec((desc(X),)), OrderSpec.of(X), OrderContext.empty()
        )

    def test_paper_motivating_example(self):
        """§4.1: I = (x, y), OP = (y), x = 10 applied ⇒ satisfied."""
        context = OrderContext.from_predicates([eq_const(X, 10)])
        assert check_order(OrderSpec.of(X, Y), OrderSpec.of(Y), context)
        # And without the predicate it is not.
        assert not check_order(
            OrderSpec.of(X, Y), OrderSpec.of(Y), OrderContext.empty()
        )

    def test_equivalence_example(self):
        """§4.1: I = (x, z), OP = (y, z), x = y ⇒ satisfied."""
        context = OrderContext.empty().with_equality(X, Y)
        assert check_order(OrderSpec.of(X, Z), OrderSpec.of(Y, Z), context)

    def test_key_example(self):
        """§4.1: I = (x, y), OP = (x, z), x key ⇒ satisfied."""
        context = OrderContext.empty().with_key([X])
        assert check_order(OrderSpec.of(X, Y), OrderSpec.of(X, Z), context)

    def test_one_record_satisfies_anything(self):
        context = OrderContext.empty().with_key([])
        assert check_order(OrderSpec.of(X, Y, Z), OrderSpec(), context)


class TestNaiveTestOrder:
    def test_prefix_only(self):
        assert check_order_naive(OrderSpec.of(X), OrderSpec.of(X, Y))
        assert not check_order_naive(OrderSpec.of(Y), OrderSpec.of(X, Y))

    def test_ignores_context_facts(self):
        # The naive test cannot exploit x = 10; this asymmetry is the
        # paper's production-vs-disabled experiment in miniature.
        assert not check_order_naive(OrderSpec.of(X, Y), OrderSpec.of(Y))

    def test_empty_interesting(self):
        assert check_order_naive(OrderSpec(), OrderSpec())
