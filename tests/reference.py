"""Compatibility shim: the reference evaluator moved into the library.

The brute-force oracle lives in :mod:`repro.verify.reference` so the
``python -m repro.verify`` harness and the tests share one
implementation (including the single documented NULL-ordering
convention: every comparison goes through ``sort_key``, NULLs high).
Import from ``repro.verify.reference`` in new code.
"""

from repro.verify.reference import (  # noqa: F401
    evaluate_block,
    reference_query,
)
