"""Expression evaluation under three-valued logic."""

import decimal

import pytest

from repro.errors import ExpressionError
from repro.expr import (
    Aggregate,
    AggregateKind,
    Arithmetic,
    ArithmeticOp,
    BooleanExpr,
    BooleanOp,
    CaseWhen,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Not,
    RowSchema,
    col,
    evaluate,
    evaluate_predicate,
    lit,
)

X, Y = col("t", "x"), col("t", "y")
SCHEMA = RowSchema([X, Y])


def ev(expression, row):
    return evaluate(expression, SCHEMA, row)


class TestBasics:
    def test_literal(self):
        assert ev(lit(5), (0, 0)) == 5
        assert ev(lit(None), (0, 0)) is None

    def test_column(self):
        assert ev(X, (7, 8)) == 7
        assert ev(Y, (7, 8)) == 8

    def test_comparison(self):
        pred = Comparison(ComparisonOp.LT, X, Y)
        assert ev(pred, (1, 2)) is True
        assert ev(pred, (2, 1)) is False
        assert ev(pred, (None, 1)) is None

    def test_all_comparison_ops(self):
        cases = {
            ComparisonOp.EQ: (True, False, False),
            ComparisonOp.NE: (False, True, True),
            ComparisonOp.LT: (False, True, False),
            ComparisonOp.LE: (True, True, False),
            ComparisonOp.GT: (False, False, True),
            ComparisonOp.GE: (True, False, True),
        }
        for op, (eq, lt, gt) in cases.items():
            pred = Comparison(op, X, Y)
            assert ev(pred, (1, 1)) is eq
            assert ev(pred, (0, 1)) is lt
            assert ev(pred, (1, 0)) is gt


class TestThreeValuedLogic:
    def test_and_kleene(self):
        def conj(a, b):
            return ev(
                BooleanExpr(BooleanOp.AND, (lit(a), lit(b))), (0, 0)
            )

        assert conj(True, True) is True
        assert conj(True, False) is False
        assert conj(False, None) is False  # False dominates unknown
        assert conj(True, None) is None

    def test_or_kleene(self):
        def disj(a, b):
            return ev(BooleanExpr(BooleanOp.OR, (lit(a), lit(b))), (0, 0))

        assert disj(False, False) is False
        assert disj(False, True) is True
        assert disj(True, None) is True  # True dominates unknown
        assert disj(False, None) is None

    def test_not(self):
        assert ev(Not(lit(True)), (0, 0)) is False
        assert ev(Not(lit(None)), (0, 0)) is None

    def test_predicate_filter_semantics(self):
        # Unknown counts as False for filtering.
        pred = Comparison(ComparisonOp.EQ, X, lit(1))
        assert evaluate_predicate(pred, SCHEMA, (None, 0)) is False
        assert evaluate_predicate(pred, SCHEMA, (1, 0)) is True


class TestSpecialPredicates:
    def test_is_null(self):
        assert ev(IsNull(X), (None, 0)) is True
        assert ev(IsNull(X), (1, 0)) is False
        assert ev(IsNull(X, negated=True), (1, 0)) is True

    def test_in_list(self):
        pred = InList(X, (lit(1), lit(2)))
        assert ev(pred, (1, 0)) is True
        assert ev(pred, (3, 0)) is False
        assert ev(pred, (None, 0)) is None

    def test_in_list_with_null_member(self):
        pred = InList(X, (lit(1), lit(None)))
        assert ev(pred, (1, 0)) is True
        assert ev(pred, (3, 0)) is None  # unknown, not false


class TestArithmetic:
    def test_operations(self):
        assert ev(Arithmetic(ArithmeticOp.ADD, X, Y), (2, 3)) == 5
        assert ev(Arithmetic(ArithmeticOp.SUB, X, Y), (2, 3)) == -1
        assert ev(Arithmetic(ArithmeticOp.MUL, X, Y), (2, 3)) == 6
        assert ev(Arithmetic(ArithmeticOp.DIV, X, Y), (6, 3)) == 2

    def test_null_propagates(self):
        assert ev(Arithmetic(ArithmeticOp.ADD, X, lit(None)), (2, 3)) is None

    def test_decimal_float_mix(self):
        result = ev(
            Arithmetic(ArithmeticOp.MUL, lit(decimal.Decimal("2.5")), lit(0.5)),
            (0, 0),
        )
        assert result == decimal.Decimal("1.25")

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            ev(Arithmetic(ArithmeticOp.DIV, X, Y), (1, 0))

    def test_paper_revenue_expression(self):
        # l_extendedprice * (1 - l_discount)
        expr = Arithmetic(
            ArithmeticOp.MUL,
            X,
            Arithmetic(ArithmeticOp.SUB, lit(1), Y),
        )
        price, discount = decimal.Decimal("100.00"), decimal.Decimal("0.10")
        assert ev(expr, (price, discount)) == decimal.Decimal("90.00")


class TestCaseWhen:
    def test_branches(self):
        expr = CaseWhen(Comparison(ComparisonOp.GT, X, Y), lit("a"), lit("b"))
        assert ev(expr, (2, 1)) == "a"
        assert ev(expr, (1, 2)) == "b"

    def test_unknown_condition_takes_else(self):
        expr = CaseWhen(Comparison(ComparisonOp.GT, X, Y), lit("a"), lit("b"))
        assert ev(expr, (None, 1)) == "b"


class TestAggregateGuard:
    def test_aggregate_cannot_evaluate_per_record(self):
        agg = Aggregate(AggregateKind.SUM, X)
        with pytest.raises(ExpressionError):
            ev(agg, (1, 2))

    def test_non_count_requires_argument(self):
        with pytest.raises(ExpressionError):
            Aggregate(AggregateKind.SUM, None)
