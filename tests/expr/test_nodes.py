"""Expression node basics: construction, operators, rendering."""

import pytest

from repro.errors import ExpressionError
from repro.expr import (
    Aggregate,
    AggregateKind,
    BooleanExpr,
    BooleanOp,
    Comparison,
    ComparisonOp,
    col,
    lit,
)
from repro.expr.nodes import Parameter


class TestComparisonOp:
    def test_flipped(self):
        assert ComparisonOp.LT.flipped() is ComparisonOp.GT
        assert ComparisonOp.LE.flipped() is ComparisonOp.GE
        assert ComparisonOp.EQ.flipped() is ComparisonOp.EQ
        assert ComparisonOp.NE.flipped() is ComparisonOp.NE

    def test_negated(self):
        assert ComparisonOp.LT.negated() is ComparisonOp.GE
        assert ComparisonOp.EQ.negated() is ComparisonOp.NE
        assert ComparisonOp.GE.negated() is ComparisonOp.LT

    def test_flip_negate_roundtrip(self):
        for op in ComparisonOp:
            assert op.flipped().flipped() is op
            assert op.negated().negated() is op


class TestNodeBasics:
    def test_column_ref_identity(self):
        assert col("a", "x") == col("a", "x")
        assert col("a", "x") != col("b", "x")
        assert hash(col("a", "x")) == hash(col("a", "x"))

    def test_literal_rendering(self):
        assert str(lit(None)) == "NULL"
        assert str(lit("o'brien")) == "'o''brien'"
        assert str(lit(5)) == "5"

    def test_parameter_rendering(self):
        assert str(Parameter("seg")) == ":seg"

    def test_boolean_needs_two_operands(self):
        with pytest.raises(ExpressionError):
            BooleanExpr(BooleanOp.AND, (lit(True),))

    def test_children_walk(self):
        pred = Comparison(ComparisonOp.EQ, col("a", "x"), lit(1))
        assert pred.children() == (col("a", "x"), lit(1))

    def test_comparison_rendering(self):
        pred = Comparison(ComparisonOp.LE, col("a", "x"), lit(3))
        assert str(pred) == "a.x <= 3"


class TestAggregateNodes:
    def test_count_star(self):
        agg = Aggregate(AggregateKind.COUNT, None)
        assert str(agg) == "COUNT(*)"
        assert agg.children() == ()

    def test_distinct_rendering(self):
        agg = Aggregate(AggregateKind.SUM, col("a", "x"), distinct=True)
        assert str(agg) == "SUM(DISTINCT a.x)"

    def test_alias_excluded_from_equality(self):
        one = Aggregate(AggregateKind.SUM, col("a", "x"), alias="s1")
        two = Aggregate(AggregateKind.SUM, col("a", "x"), alias="s2")
        assert one == two

    def test_sum_requires_argument(self):
        with pytest.raises(ExpressionError):
            Aggregate(AggregateKind.AVG, None)
