"""Predicate analysis: the facts feeding the order algebra."""

from repro.expr import (
    BooleanExpr,
    BooleanOp,
    Comparison,
    ComparisonOp,
    analyze_predicates,
    col,
    columns_of,
    conjuncts_of,
    is_column_constant_equality,
    is_column_equality,
    lit,
)
from repro.expr.nodes import Arithmetic, ArithmeticOp, Not

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")


def AND(*operands):
    return BooleanExpr(BooleanOp.AND, tuple(operands))


def OR(*operands):
    return BooleanExpr(BooleanOp.OR, tuple(operands))


def EQ(left, right):
    return Comparison(ComparisonOp.EQ, left, right)


class TestConjuncts:
    def test_none_is_empty(self):
        assert conjuncts_of(None) == []

    def test_flat_and(self):
        pred = AND(EQ(X, lit(1)), EQ(Y, lit(2)))
        assert len(conjuncts_of(pred)) == 2

    def test_nested_and_flattens(self):
        pred = AND(EQ(X, lit(1)), AND(EQ(Y, lit(2)), EQ(Z, lit(3))))
        assert len(conjuncts_of(pred)) == 3

    def test_or_stays_whole(self):
        pred = OR(EQ(X, lit(1)), EQ(Y, lit(2)))
        assert conjuncts_of(pred) == [pred]


class TestColumnsOf:
    def test_simple(self):
        assert columns_of(EQ(X, lit(1))) == frozenset((X,))

    def test_nested(self):
        expr = Arithmetic(ArithmeticOp.ADD, X, Arithmetic(ArithmeticOp.MUL, Y, Z))
        assert columns_of(expr) == frozenset((X, Y, Z))


class TestClassification:
    def test_constant_equality_both_orders(self):
        assert is_column_constant_equality(EQ(X, lit(10)))[0] == X
        assert is_column_constant_equality(EQ(lit(10), X))[0] == X

    def test_null_literal_binds_nothing(self):
        # col = NULL never evaluates to true.
        assert is_column_constant_equality(EQ(X, lit(None))) is None

    def test_non_equality_not_constant_binding(self):
        pred = Comparison(ComparisonOp.LT, X, lit(10))
        assert is_column_constant_equality(pred) is None

    def test_column_equality(self):
        assert is_column_equality(EQ(X, Y)) == (X, Y)
        assert is_column_equality(EQ(X, X)) is None  # trivial
        assert is_column_equality(EQ(X, lit(1))) is None


class TestAnalyzePredicates:
    def test_mixed_facts(self):
        facts = analyze_predicates(
            [AND(EQ(X, lit(10)), EQ(Y, Z)), Comparison(ComparisonOp.GT, Y, lit(0))]
        )
        assert facts.constant_bindings == {X: lit(10)}
        assert facts.equalities == [(Y, Z)]
        assert len(facts.residual) == 1
        assert len(facts.conjuncts) == 3

    def test_or_contributes_no_facts(self):
        # Facts inside a disjunct do not hold for all records.
        facts = analyze_predicates([OR(EQ(X, lit(1)), EQ(X, Y))])
        assert not facts.constant_bindings
        assert not facts.equalities
        assert len(facts.residual) == 1

    def test_negated_equality_is_residual(self):
        facts = analyze_predicates([Not(EQ(X, lit(1)))])
        assert not facts.constant_bindings

    def test_first_constant_binding_wins(self):
        facts = analyze_predicates([EQ(X, lit(1)), EQ(X, lit(2))])
        assert facts.constant_bindings[X] == lit(1)
