"""RowSchema and expression transformation."""

import pytest

from repro.errors import ExpressionError
from repro.expr import Comparison, ComparisonOp, RowSchema, col, lit
from repro.expr.nodes import Arithmetic, ArithmeticOp, BooleanExpr, BooleanOp
from repro.expr.transform import substitute_columns, transform

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")
VX = col("v", "x")


class TestRowSchema:
    def test_positions(self):
        schema = RowSchema([X, Y])
        assert schema.position(X) == 0
        assert schema.position(Y) == 1

    def test_missing_column_raises(self):
        with pytest.raises(ExpressionError):
            RowSchema([X]).position(Y)

    def test_duplicate_rejected(self):
        with pytest.raises(ExpressionError):
            RowSchema([X, X])

    def test_contains_len_iter(self):
        schema = RowSchema([X, Y])
        assert X in schema and Z not in schema
        assert len(schema) == 2
        assert list(schema) == [X, Y]

    def test_concat(self):
        joined = RowSchema([X]).concat(RowSchema([Y, Z]))
        assert joined.columns == (X, Y, Z)

    def test_project_reorders(self):
        schema = RowSchema([X, Y, Z]).project([Z, X])
        assert schema.columns == (Z, X)

    def test_project_missing_raises(self):
        with pytest.raises(ExpressionError):
            RowSchema([X]).project([Y])

    def test_projector(self):
        project = RowSchema([X, Y, Z]).projector([Z, X])
        assert project((1, 2, 3)) == (3, 1)

    def test_equality_and_hash(self):
        assert RowSchema([X, Y]) == RowSchema([X, Y])
        assert hash(RowSchema([X])) == hash(RowSchema([X]))
        assert RowSchema([X, Y]) != RowSchema([Y, X])


class TestSubstituteColumns:
    def test_simple_substitution(self):
        pred = Comparison(ComparisonOp.EQ, VX, lit(1))
        replaced = substitute_columns(pred, {VX: X})
        assert replaced == Comparison(ComparisonOp.EQ, X, lit(1))

    def test_substitution_with_expression(self):
        total = Arithmetic(ArithmeticOp.ADD, X, Y)
        pred = Comparison(ComparisonOp.GT, VX, lit(0))
        replaced = substitute_columns(pred, {VX: total})
        assert replaced == Comparison(ComparisonOp.GT, total, lit(0))

    def test_unmapped_columns_untouched(self):
        pred = Comparison(ComparisonOp.EQ, X, Y)
        assert substitute_columns(pred, {VX: Z}) == pred

    def test_deep_nesting(self):
        pred = BooleanExpr(
            BooleanOp.AND,
            (
                Comparison(ComparisonOp.EQ, VX, lit(1)),
                Comparison(ComparisonOp.LT, Y, VX),
            ),
        )
        replaced = substitute_columns(pred, {VX: Z})
        assert "v.x" not in str(replaced)
        assert "t.z" in str(replaced)


class TestTransform:
    def test_identity_visit(self):
        pred = Comparison(ComparisonOp.EQ, X, lit(1))
        assert transform(pred, lambda node: None) == pred

    def test_bottom_up_rewrite(self):
        # Replace every literal 1 with literal 2.
        pred = Comparison(ComparisonOp.EQ, X, lit(1))

        def visit(node):
            if node == lit(1):
                return lit(2)
            return None

        assert transform(pred, visit) == Comparison(ComparisonOp.EQ, X, lit(2))
