"""Compiled expression closures must match the interpreter exactly.

Every test here evaluates the same expression over the same rows with
both :func:`repro.expr.compile.compile_expression` and
:func:`repro.expr.evaluate.evaluate`, with emphasis on the three-valued
edge cases where a naive compilation would diverge (NULL in AND/OR,
NULLs inside IN lists, mixed-numeric comparison, CASE WHEN arms).
"""

import decimal

import pytest

from repro.errors import ExpressionError
from repro.expr import (
    BooleanExpr,
    BooleanOp,
    CaseWhen,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Not,
    RowSchema,
    col,
    evaluate,
    lit,
)
from repro.expr.compile import (
    clear_compile_cache,
    compile_expression,
    compile_predicate,
    ordered_key_kernel,
    predicate_kernel,
    projection_kernel,
    raw_key_kernel,
    reset_stats,
    stats,
)
from repro.expr.nodes import Arithmetic, ArithmeticOp

X, Y = col("t", "x"), col("t", "y")
SCHEMA = RowSchema([X, Y])


def both(expression, row, schema=SCHEMA):
    """Evaluate via interpreter and compiled closure; assert identical."""
    expected = evaluate(expression, schema, row)
    compiled = compile_expression(expression, schema)(row)
    assert compiled == expected
    # `is` for the truth values so True/1 and False/0 can't blur.
    if expected is None or isinstance(expected, bool):
        assert compiled is expected
    return compiled


class TestThreeValuedBoolean:
    def test_null_in_conjunction(self):
        for a in (True, False, None):
            for b in (True, False, None):
                both(BooleanExpr(BooleanOp.AND, (lit(a), lit(b))), (0, 0))
                both(BooleanExpr(BooleanOp.OR, (lit(a), lit(b))), (0, 0))

    def test_false_dominates_unknown_with_columns(self):
        # x IS NULL short-circuits nothing: AND must still see False.
        pred = BooleanExpr(
            BooleanOp.AND,
            (Comparison(ComparisonOp.GT, X, lit(5)), lit(False)),
        )
        assert both(pred, (None, 0)) is False

    def test_unknown_survives_or(self):
        pred = BooleanExpr(
            BooleanOp.OR,
            (Comparison(ComparisonOp.GT, X, lit(5)), lit(False)),
        )
        assert both(pred, (None, 0)) is None

    def test_not_of_unknown(self):
        assert both(Not(Comparison(ComparisonOp.EQ, X, Y)), (None, 1)) is None

    def test_predicate_form_drops_unknown(self):
        pred = Comparison(ComparisonOp.EQ, X, Y)
        assert compile_predicate(pred, SCHEMA)((None, 1)) is False
        assert compile_predicate(pred, SCHEMA)((1, 1)) is True


class TestInList:
    def test_null_needle(self):
        expr = InList(X, (lit(1), lit(2)))
        assert both(expr, (None, 0)) is None

    def test_null_in_values_hit(self):
        # A match wins even with NULLs in the list.
        expr = InList(X, (lit(None), lit(2)))
        assert both(expr, (2, 0)) is True

    def test_null_in_values_miss_is_unknown(self):
        # No match + NULL in list = unknown, not False.
        expr = InList(X, (lit(None), lit(2)))
        assert both(expr, (3, 0)) is None

    def test_miss_without_nulls_is_false(self):
        expr = InList(X, (lit(1), lit(2)))
        assert both(expr, (3, 0)) is False

    def test_non_constant_values(self):
        # Column refs in the list force the per-row path.
        expr = InList(X, (Y, lit(9)))
        assert both(expr, (4, 4)) is True
        assert both(expr, (4, 5)) is False
        assert both(expr, (4, None)) is None


class TestMixedNumericComparison:
    def test_decimal_vs_int(self):
        expr = Comparison(ComparisonOp.EQ, X, lit(decimal.Decimal("5")))
        assert both(expr, (5, 0)) is True
        assert both(expr, (decimal.Decimal("5.0"), 0)) is True
        assert both(expr, (4, 0)) is False

    def test_decimal_vs_float(self):
        expr = Comparison(ComparisonOp.LT, X, lit(0.3))
        assert both(expr, (decimal.Decimal("0.25"), 0)) is True
        assert both(expr, (decimal.Decimal("0.35"), 0)) is False

    def test_null_comparison_unknown(self):
        for op in ComparisonOp:
            assert both(Comparison(op, X, lit(1)), (None, 0)) is None
            assert both(Comparison(op, lit(1), X), (None, 0)) is None

    def test_constant_on_left(self):
        expr = Comparison(ComparisonOp.GT, lit(10), X)
        assert both(expr, (5, 0)) is True
        assert both(expr, (15, 0)) is False
        assert both(expr, (decimal.Decimal("10"), 0)) is False


class TestCaseWhen:
    def test_fallthrough_arms(self):
        expr = CaseWhen(
            Comparison(ComparisonOp.GT, X, lit(0)), lit("pos"), lit("rest")
        )
        assert both(expr, (1, 0)) == "pos"
        assert both(expr, (-1, 0)) == "rest"
        # NULL condition takes the ELSE arm (unknown is not True).
        assert both(expr, (None, 0)) == "rest"

    def test_lazy_arms(self):
        # The untaken arm must not be evaluated: 1/0 in ELSE.
        expr = CaseWhen(
            Comparison(ComparisonOp.GT, X, lit(0)),
            lit("ok"),
            Arithmetic(ArithmeticOp.DIV, lit(1), lit(0)),
        )
        assert both(expr, (1, 0)) == "ok"
        with pytest.raises(ExpressionError):
            compile_expression(expr, SCHEMA)((-1, 0))


class TestArithmeticAndNulls:
    def test_null_propagation(self):
        expr = Arithmetic(ArithmeticOp.ADD, X, lit(1))
        assert both(expr, (None, 0)) is None

    def test_decimal_float_unification(self):
        expr = Arithmetic(ArithmeticOp.MUL, X, lit(0.5))
        assert both(expr, (decimal.Decimal("10"), 0)) == decimal.Decimal("5.0")

    def test_division_by_zero_at_call_time(self):
        # Constant folding must not hoist the error to compile time.
        expr = Arithmetic(ArithmeticOp.DIV, lit(1), lit(0))
        fn = compile_expression(expr, SCHEMA)
        with pytest.raises(ExpressionError):
            fn((0, 0))

    def test_is_null(self):
        assert both(IsNull(X), (None, 0)) is True
        assert both(IsNull(X), (1, 0)) is False
        assert both(IsNull(X, negated=True), (None, 0)) is False


class TestKernelsAndCaching:
    def test_predicate_kernel(self):
        rows = [(i, i % 3) for i in range(10)] + [(None, 0)]
        kernel = predicate_kernel(
            Comparison(ComparisonOp.EQ, Y, lit(0)), SCHEMA
        )
        assert kernel(rows) == [row for row in rows if row[1] == 0]

    def test_projection_kernel(self):
        rows = [(1, 2), (3, 4)]
        kernel = projection_kernel(
            [Arithmetic(ArithmeticOp.ADD, X, Y), X], SCHEMA
        )
        assert kernel(rows) == [(3, 1), (7, 3)]

    def test_single_expression_projection(self):
        kernel = projection_kernel([Y], SCHEMA)
        assert kernel([(1, 2), (3, 4)]) == [(2,), (4,)]

    def test_raw_key_kernel(self):
        kernel = raw_key_kernel((1, 0))
        assert kernel([(1, 2), (3, 4)]) == [(2, 1), (4, 3)]

    def test_ordered_key_kernel_sorts_like_sort_key(self):
        from repro.sqltypes import sort_key as key_of

        rows = [(3, None), (1, 5), (None, 2), (2, 2)]
        kernel = ordered_key_kernel([(0, False), (1, True)])
        expected = [
            (key_of(row[0], False), key_of(row[1], True)) for row in rows
        ]
        assert kernel(rows) == expected
        assert sorted(kernel(rows)) == sorted(expected)

    def test_memoization(self):
        clear_compile_cache()
        reset_stats()
        expr = Comparison(ComparisonOp.EQ, X, Y)
        first = compile_expression(expr, SCHEMA)
        second = compile_expression(expr, SCHEMA)
        assert first is second
        assert stats()["compile.memo_hits"] == 1

    def test_constant_folding_counted(self):
        clear_compile_cache()
        reset_stats()
        expr = Comparison(
            ComparisonOp.LT, X, Arithmetic(ArithmeticOp.ADD, lit(1), lit(2))
        )
        fn = compile_expression(expr, SCHEMA)
        assert fn((2, 0)) is True
        assert fn((3, 0)) is False
