"""Vector predicate/value kernels vs the interpreter, leaf by leaf.

:mod:`repro.expr.vector` promises byte-identical semantics with the row
engines while reordering work. These tests pin the pieces that make
that promise hold: every leaf's True set matches the interpreter's,
cost ordering follows the selectivity hints, reordering is *disabled*
the moment a term can raise, OR's accepted-row bypass actually skips
rows, gather() is selection-exact on every batch shape, and the
accumulator's run folding is value-for-value identical to per-row adds.
"""

from __future__ import annotations

import pytest

from repro.executor.aggregate import _Accumulator
from repro.expr import (
    BooleanExpr,
    BooleanOp,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Not,
    RowSchema,
    col,
    evaluate,
    lit,
)
from repro.expr.nodes import AggregateKind, Arithmetic, ArithmeticOp
from repro.expr.vector import (
    ColumnBlock,
    JoinBlock,
    RowBlock,
    VectorFilter,
    clear_vector_cache,
    compile_vector_filter,
    vector_value_kernel,
)
from repro.sqltypes.values import NULL

X, Y = col("t", "x"), col("t", "y")
SCHEMA = RowSchema([X, Y])

ROWS = [
    (0, 5),
    (1, None),
    (None, 3),
    (3, 3),
    (4, 0),
    (None, None),
    (6, 2),
    (7, 7),
]


@pytest.fixture(autouse=True)
def _fresh_kernels():
    # Kernels are memoized per (expression, schema) and carry adaptive
    # statistics; tests that assert ordering or counters need a clean
    # slate.
    clear_vector_cache()
    yield
    clear_vector_cache()


def reference_selection(expression, rows, schema=SCHEMA):
    return [
        i
        for i, row in enumerate(rows)
        if evaluate(expression, schema, row) is True
    ]


def assert_matches_interpreter(expression, rows=ROWS, schema=SCHEMA):
    kernel = VectorFilter(expression, schema)
    batch = RowBlock(list(rows))
    assert kernel(batch) == reference_selection(expression, rows, schema), (
        expression
    )


class TestLeafTruthTables:
    def test_compare_constant_all_ops(self):
        for op in ComparisonOp:
            assert_matches_interpreter(Comparison(op, X, lit(3)))

    def test_compare_constant_flipped(self):
        # constant <op> column folds into the same fast leaf with the
        # operator flipped; semantics must be the unflipped ones.
        for op in ComparisonOp:
            assert_matches_interpreter(Comparison(op, lit(3), X))

    def test_compare_columns(self):
        for op in ComparisonOp:
            assert_matches_interpreter(Comparison(op, X, Y))

    def test_is_null(self):
        assert_matches_interpreter(IsNull(X, negated=False))
        assert_matches_interpreter(IsNull(X, negated=True))

    def test_in_list(self):
        assert_matches_interpreter(InList(X, (lit(1), lit(3), lit(7))))
        assert_matches_interpreter(
            Not(InList(X, (lit(1), lit(3), lit(7))))
        )

    def test_mixed_numeric_comparison(self):
        rows = [(0.5, 1), (2, 1.5), (None, 1), (3, 3)]
        assert_matches_interpreter(Comparison(ComparisonOp.GT, X, lit(1)), rows)

    def test_not_and_or_compositions(self):
        a = Comparison(ComparisonOp.GT, X, lit(2))
        b = Comparison(ComparisonOp.LT, Y, lit(4))
        for expression in (
            BooleanExpr(BooleanOp.AND, (a, b)),
            BooleanExpr(BooleanOp.OR, (a, b)),
            Not(BooleanExpr(BooleanOp.AND, (a, b))),
            Not(BooleanExpr(BooleanOp.OR, (a, b))),
            BooleanExpr(BooleanOp.OR, (Not(a), IsNull(X, negated=False))),
        ):
            assert_matches_interpreter(expression)

    def test_rows_loop_equals_column_loop(self):
        # First call on a fresh RowBlock takes the rows-direct loop;
        # once the column is transposed the same kernel takes the
        # column loop. Same selection either way.
        expression = Comparison(ComparisonOp.GE, X, lit(3))
        kernel = VectorFilter(expression, SCHEMA)
        fresh = RowBlock(list(ROWS))
        via_rows = kernel(fresh)
        assert 0 not in fresh._columns  # rows loop: no transpose
        fresh.column(0)
        via_column = kernel(fresh)
        assert via_rows == via_column == reference_selection(
            expression, ROWS
        )


class TestCostOrdering:
    def test_and_orders_most_selective_first(self):
        cheap = Comparison(ComparisonOp.GT, X, lit(3))
        picky = Comparison(ComparisonOp.LT, Y, lit(4))
        expression = BooleanExpr(BooleanOp.AND, (cheap, picky))
        kernel = VectorFilter(
            expression, SCHEMA, hints={cheap: 0.9, picky: 0.1}
        )
        assert kernel.term_order() == [picky, cheap]
        flipped = VectorFilter(
            expression, SCHEMA, hints={cheap: 0.1, picky: 0.9}
        )
        assert flipped.term_order() == [cheap, picky]

    def test_or_orders_most_accepting_first(self):
        a = Comparison(ComparisonOp.GT, X, lit(3))
        b = Comparison(ComparisonOp.LT, Y, lit(4))
        expression = BooleanExpr(BooleanOp.OR, (a, b))
        kernel = VectorFilter(expression, SCHEMA, hints={a: 0.1, b: 0.9})
        assert kernel.term_order() == [b, a]

    def test_ordering_never_changes_result(self):
        a = Comparison(ComparisonOp.GT, X, lit(2))
        b = InList(Y, (lit(0), lit(3)))
        for op in (BooleanOp.AND, BooleanOp.OR):
            expression = BooleanExpr(op, (a, b))
            expected = reference_selection(expression, ROWS)
            for hints in ({a: 0.05, b: 0.95}, {a: 0.95, b: 0.05}):
                clear_vector_cache()
                kernel = VectorFilter(expression, SCHEMA, hints=hints)
                assert kernel(RowBlock(list(ROWS))) == expected

    def test_raising_term_pins_source_order(self):
        # x + y > 3 can raise (arithmetic), so the conjunction must not
        # reorder even when hints would prefer to.
        raising = Comparison(
            ComparisonOp.GT,
            Arithmetic(ArithmeticOp.ADD, X, Y),
            lit(3),
        )
        safe = Comparison(ComparisonOp.LT, Y, lit(4))
        expression = BooleanExpr(BooleanOp.AND, (raising, safe))
        kernel = VectorFilter(
            expression, SCHEMA, hints={raising: 0.9, safe: 0.1}
        )
        assert not kernel.root.reorder_ok
        assert kernel.term_order() == [raising, safe]
        assert_matches_interpreter(expression)

    def test_two_raising_siblings_fall_back_to_row_closure(self):
        # Column-at-a-time would make *which row's* error surfaces
        # first order-dependent; two raising siblings force the row
        # closure, whose term_order is the whole expression.
        left = Comparison(
            ComparisonOp.GT, Arithmetic(ArithmeticOp.ADD, X, Y), lit(3)
        )
        right = Comparison(
            ComparisonOp.LT, Arithmetic(ArithmeticOp.MUL, X, Y), lit(9)
        )
        expression = BooleanExpr(BooleanOp.AND, (left, right))
        kernel = VectorFilter(expression, SCHEMA)
        assert kernel.term_order() == [expression]
        assert_matches_interpreter(expression)

    def test_or_bypass_skips_accepted_rows(self):
        # Rows the first disjunct accepts never reach the second.
        a = Comparison(ComparisonOp.GE, X, lit(0))  # accepts non-NULL x
        b = Comparison(ComparisonOp.LT, Y, lit(4))
        expression = BooleanExpr(BooleanOp.OR, (a, b))
        kernel = VectorFilter(expression, SCHEMA, hints={a: 0.9, b: 0.1})
        assert kernel.term_order() == [a, b]
        kernel(RowBlock(list(ROWS)))
        first, second = kernel.root.ordered()
        assert first.seen == len(ROWS)
        accepted = len(reference_selection(Comparison(ComparisonOp.GE, X, lit(0)), ROWS))
        assert second.seen == len(ROWS) - accepted
        assert second.seen < first.seen

    def test_adaptive_stats_accumulate_across_batches(self):
        a = Comparison(ComparisonOp.GT, X, lit(3))
        b = Comparison(ComparisonOp.LT, Y, lit(4))
        expression = BooleanExpr(BooleanOp.AND, (a, b))
        kernel = compile_vector_filter(expression, SCHEMA)
        assert compile_vector_filter(expression, SCHEMA) is kernel  # memo
        for _ in range(20):
            kernel(RowBlock(list(ROWS)))
        first = kernel.root.ordered()[0]
        assert first.seen >= 64  # past _ADAPT_MIN_ROWS: observed rules
        assert 0.0 <= first.observed() <= 1.0


class TestGather:
    def test_row_block_sparse_and_dense(self):
        sparse = [1, 4, 6]
        fresh = RowBlock(list(ROWS))
        assert fresh.gather(0, sparse) == [ROWS[i][0] for i in sparse]
        # The sparse path must not have transposed the whole column.
        assert 0 not in fresh._columns
        full = list(range(len(ROWS)))
        assert list(fresh.gather(0, full)) == [row[0] for row in ROWS]
        # Dense gather transposes once and aliases thereafter.
        assert fresh.gather(0, full) is fresh._columns[0]
        assert fresh.gather(0, sparse) == [ROWS[i][0] for i in sparse]

    def test_column_block_gather(self):
        columns = [[r[0] for r in ROWS], [r[1] for r in ROWS]]
        block = ColumnBlock(columns, len(ROWS))
        assert list(block.gather(1, [0, 3, 7])) == [5, 3, 7]
        assert list(block.gather(1, list(range(len(ROWS))))) == columns[1]

    def test_join_block_gather_with_repeated_outer_indices(self):
        # Join output repeats outer rows; gather must follow the
        # indirection instead of treating out_index as a selection.
        outer = RowBlock([(10, 11), (20, 21), (30, 31)])
        out_index = [0, 0, 2, 2, 2]
        inner_rows = [(f"i{j}",) for j in range(5)]
        block = JoinBlock(outer, 2, out_index, inner_rows)
        full = list(range(5))
        assert list(block.gather(0, full)) == [10, 10, 30, 30, 30]
        assert list(block.gather(2, full)) == ["i0", "i1", "i2", "i3", "i4"]
        sparse = [1, 4]
        assert list(block.gather(0, sparse)) == [10, 30]
        assert list(block.gather(1, sparse)) == [11, 31]
        assert list(block.gather(2, sparse)) == ["i1", "i4"]
        assert block.materialize() == [
            (10, 11, "i0"),
            (10, 11, "i1"),
            (30, 31, "i2"),
            (30, 31, "i3"),
            (30, 31, "i4"),
        ]

    def test_value_kernel_matches_interpreter(self):
        expressions = (
            X,
            Arithmetic(ArithmeticOp.ADD, X, Y),
            Arithmetic(ArithmeticOp.MUL, X, lit(2)),
            lit(7),
        )
        batch = RowBlock(list(ROWS))
        sel = [0, 3, 4, 6, 7]
        for expression in expressions:
            kernel = vector_value_kernel(expression, SCHEMA)
            expected = [
                evaluate(expression, SCHEMA, ROWS[i]) for i in sel
            ]
            assert list(kernel(batch, sel)) == expected, expression


class TestAccumulatorRunFolding:
    def run_vs_add(self, kind, values, distinct=False, chunk=3):
        per_row = _Accumulator(kind, distinct)
        for value in values:
            per_row.add(value)
        folded = _Accumulator(kind, distinct)
        for start in range(0, len(values), chunk):
            folded.add_run(values[start : start + chunk])
        assert folded.result() == per_row.result()
        # Exact object-level equality for floats: same fold order means
        # bit-identical sums, not just approximately equal ones.
        assert repr(folded.result()) == repr(per_row.result())
        return folded.result()

    def test_sum_float_fold_order(self):
        values = [0.1, 0.2, 0.3, 1e16, 1.0, -1e16, 0.7, None, 0.1]
        self.run_vs_add(AggregateKind.SUM, values)
        self.run_vs_add(AggregateKind.AVG, values)

    def test_nulls_and_sentinel(self):
        values = [None, NULL, 5, None, 3, NULL]
        assert self.run_vs_add(AggregateKind.SUM, values) == 8
        assert self.run_vs_add(AggregateKind.MIN, values) == 3

    def test_min_max_ties_keep_first(self):
        # Decimal('1.0') and Decimal('1.00') tie under sort_key; the
        # strict < / > comparison must keep the first-seen value.
        import decimal

        values = [decimal.Decimal("1.0"), decimal.Decimal("1.00")]
        result = self.run_vs_add(AggregateKind.MIN, values, chunk=1)
        assert str(result) == "1.0"
        result = self.run_vs_add(AggregateKind.MIN, values, chunk=2)
        assert str(result) == "1.0"

    def test_distinct_routes_through_add(self):
        values = [1, 1, 2, None, 2, 3]
        assert self.run_vs_add(AggregateKind.COUNT, values, distinct=True) == 3
        assert self.run_vs_add(AggregateKind.SUM, values, distinct=True) == 6

    def test_add_count_matches_count_star(self):
        from repro.executor.aggregate import _COUNT_STAR

        per_row = _Accumulator(AggregateKind.COUNT, False)
        for _ in range(7):
            per_row.add(_COUNT_STAR)
        bulk = _Accumulator(AggregateKind.COUNT, False)
        bulk.add_count(4)
        bulk.add_count(3)
        assert bulk.result() == per_row.result() == 7
