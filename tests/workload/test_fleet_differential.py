"""Three-engine fleet-replay differential (the verify-layer harness).

Feedback rewrites estimates and re-pins plans; it may never change a
result byte. The harness replays a full feedback round under the
compiled, vector, and interpreted engines and requires byte-identical
rows within each engine (across the baseline / re-optimized / final
replays) and across engines (final rows, statement by statement), with
no regression admitted by the gate anywhere.
"""

import pytest

from repro.verify.fleet import ENGINES, run_fleet_differential


@pytest.mark.slow
def test_three_engine_differential_deep():
    report = run_fleet_differential(rounds=4)
    assert report.ok(), report.failures


def test_three_engine_differential():
    report = run_fleet_differential(rounds=2)
    assert report.ok(), report.failures
    assert report.statements == 16
    assert set(report.qerror_before) == set(ENGINES)
    # Feedback must help (or at least not hurt) under every engine —
    # the corrections are engine-independent statistics.
    for engine in ENGINES:
        assert report.qerror_after[engine] <= report.qerror_before[engine]
    assert report.regressions_admitted == 0
