"""Regression pins for the estimator fixes that rode the workload PR.

Three long-standing misestimates, each pinned here so they cannot
quietly regress:

* ``col = const`` ignored ``null_count`` — a 90%-NULL column got the
  same 1/NDV estimate as a fully-populated one;
* range predicates had the same blind spot (histogram and min/max only
  see non-null values, so their fraction must be discounted);
* DISTINCT output was a flat ``0.5 * input`` instead of the joint-NDV
  machinery the group-by path already used.
"""

import repro.catalog.stats as stats_module
from repro.api import plan_query, run_query
from repro.catalog import Column, TableSchema
from repro.catalog.stats import ColumnStats, TableStats
from repro.cost import SelectivityEstimator, StatsView
from repro.expr import Comparison, ComparisonOp, col, lit
from repro.optimizer.plan import OpKind
from repro.sqltypes import INTEGER
from repro.workload import build_skewed_database


def make_view(null_count=0, histogram=None):
    table = TableSchema("t", [Column("a", INTEGER)])
    table.stats = TableStats(
        row_count=1000,
        columns={
            "a": ColumnStats(
                ndv=10, low=0, high=100,
                null_count=null_count, histogram=histogram,
            ),
        },
        pages=20,
    )
    return StatsView({"t": table})


A = col("t", "a")


class TestNullDiscount:
    def test_equality_scales_by_not_null_fraction(self):
        dense = SelectivityEstimator(make_view(null_count=0))
        sparse = SelectivityEstimator(make_view(null_count=900))
        predicate = Comparison(ComparisonOp.EQ, A, lit(5))
        assert abs(dense.selectivity(predicate) - 0.1) < 1e-9
        # 90% NULL: only the non-null tenth can match at all.
        assert abs(sparse.selectivity(predicate) - 0.01) < 1e-9

    def test_column_stats_equal_unit(self):
        stats = ColumnStats(ndv=10, null_count=500)
        assert abs(stats.selectivity_equal(1000) - 0.05) < 1e-9
        # No row count evidence -> no discount, plain 1/NDV.
        assert abs(stats.selectivity_equal(0) - 0.1) < 1e-9

    def test_range_scales_by_not_null_fraction(self):
        dense = SelectivityEstimator(make_view(null_count=0))
        sparse = SelectivityEstimator(make_view(null_count=500))
        predicate = Comparison(ComparisonOp.GT, A, lit(50))
        full = dense.selectivity(predicate)
        assert full > 0.0
        assert abs(sparse.selectivity(predicate) - full * 0.5) < 1e-9

    def test_bisect_is_module_level(self):
        # The hot-path ``Histogram.fraction_below`` used to re-import
        # bisect on every call; the import now lives at module scope.
        assert hasattr(stats_module, "bisect")


class TestDistinctEstimate:
    def test_distinct_tracks_joint_ndv_not_half_input(self):
        database = build_skewed_database()
        plan = plan_query(
            database,
            "select distinct region, segment from users",
        )
        distinct_nodes = (
            plan.find_all(OpKind.DISTINCT_SORTED)
            + plan.find_all(OpKind.DISTINCT_HASH)
        )
        assert distinct_nodes, plan.root.explain()
        estimate = distinct_nodes[0].properties.cardinality
        # region/segment are correlated: ~12 real pairs out of 400
        # rows. The old flat 0.5 * input said 200; the joint-NDV path
        # must land in the right order of magnitude.
        actual = len(
            run_query(
                database,
                "select distinct region, segment from users",
            ).rows
        )
        assert estimate < 100, estimate
        assert estimate >= min(actual, 1)

    def test_distinct_single_column_uses_column_ndv(self):
        database = build_skewed_database()
        plan = plan_query(database, "select distinct kind from events")
        distinct_nodes = (
            plan.find_all(OpKind.DISTINCT_SORTED)
            + plan.find_all(OpKind.DISTINCT_HASH)
        )
        assert distinct_nodes
        estimate = distinct_nodes[0].properties.cardinality
        # kind has 30 distinct values over 6000 rows; 0.5 * input was
        # 3000, two orders of magnitude off.
        assert estimate <= 60, estimate
