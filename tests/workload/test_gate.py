"""The regression gate must keep incumbents when feedback misfires.

Feedback is a heuristic; a bad correction batch can lure the optimizer
into a genuinely worse plan (the classic failure mode of
feedback-driven re-optimization). The gate's contract: a re-optimized
plan is admitted only if its fingerprint is unchanged *or* it replayed
no worse; otherwise the incumbent is re-pinned under the corrected
``stats_version`` and the rejection is logged.
"""

from repro.catalog import StatsCorrections
from repro.workload import (
    FleetRunner,
    FleetStatement,
    RegressionGate,
    build_skewed_database,
)
from repro.workload.fleet import StatementRun


def make_run(fingerprint, elapsed_ms, sim_io_ms):
    return StatementRun(
        statement=FleetStatement("s", "select 1"),
        rows=[],
        elapsed_ms=elapsed_ms,
        simulated_io_ms=sim_io_ms,
        plan_fingerprint=fingerprint,
        plan=None,
    )


class TestGateSemantics:
    def setup_method(self):
        self.gate = RegressionGate()

    def test_same_plan_never_regresses(self):
        # Identical fingerprint: even a slower replay is noise, not a
        # plan regression — there is no challenger to reject.
        incumbent = make_run("aaaa", 10.0, 5.0)
        challenger = make_run("aaaa", 500.0, 50.0)
        assert not self.gate.evaluate(incumbent, challenger).regressed

    def test_changed_and_io_worse_regresses(self):
        incumbent = make_run("aaaa", 10.0, 5.0)
        challenger = make_run("bbbb", 10.0, 9.0)
        decision = self.gate.evaluate(incumbent, challenger)
        assert decision.plan_changed
        assert decision.regressed

    def test_changed_but_better_is_admitted(self):
        incumbent = make_run("aaaa", 10.0, 9.0)
        challenger = make_run("bbbb", 8.0, 5.0)
        decision = self.gate.evaluate(incumbent, challenger)
        assert decision.plan_changed
        assert not decision.regressed
        assert decision.admitted

    def test_io_floor_absorbs_jitter(self):
        # A 0.1ms I/O delta under the floor is not a regression even
        # though it exceeds the relative tolerance.
        incumbent = make_run("aaaa", 10.0, 0.2)
        challenger = make_run("bbbb", 10.0, 0.3)
        assert not self.gate.evaluate(incumbent, challenger).regressed


class TestGateKeepsIncumbent:
    """End-to-end: bogus feedback flips the plan, the gate holds."""

    def test_bogus_selectivity_is_rejected(self):
        database = build_skewed_database()
        fleet = [
            FleetStatement(
                "hot_kind",
                "select id from events where kind = 0 order by id",
            )
        ]
        with FleetRunner(database, fleet) as runner:
            baseline = runner.replay()
            incumbent = baseline.runs[0]
            fingerprint = next(
                obs.predicate_fingerprint
                for obs in incumbent.observations
                if obs.predicate_fingerprint
            )
            # kind = 0 holds ~60% of events; claim it matches almost
            # nothing so the optimizer flips to the events_kind index
            # scan, which replays with far more simulated I/O.
            bogus = StatsCorrections()
            bogus.add_selectivity(fingerprint, 1e-6)
            report = runner.run_feedback_round(corrections=bogus)

            decision = report.decisions[0]
            assert decision.plan_changed
            assert decision.regressed

            # Incumbent retained: the final round replays the original
            # plan and the regression is logged, not admitted.
            final = report.final.runs[0]
            assert final.plan_fingerprint == incumbent.plan_fingerprint
            log = runner.service.plan_regressions()
            assert len(log) == 1
            assert log[0].action == "incumbent-retained"
            assert log[0].statement == "hot_kind"
            assert (
                log[0].incumbent_fingerprint == incumbent.plan_fingerprint
            )
            assert runner.service.stats().plan_regressions == 1

            # Feedback never changes results.
            assert report.mismatches() == []

            # The re-pinned incumbent is what the cache now serves.
            served = runner._run_statement(fleet[0])
            assert served.plan_fingerprint == incumbent.plan_fingerprint
            assert served.cache_status == "hit"
            assert served.rows == incumbent.rows
