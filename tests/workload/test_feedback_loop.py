"""The feedback loop end-to-end: observe, correct, improve, not break.

The skewed proving-ground fleet is built so the static estimator is
wrong in characteristic ways (hot-value skew, NULL-heavy columns,
correlated pairs). One feedback round must strictly improve the
q-error geomean, leave no operator kind worse, and — the hard
invariant — change no result bytes.
"""

from repro.catalog import StatsCorrections
from repro.executor.feedback import NodeObservation, q_error
from repro.workload import (
    FleetRunner,
    build_skewed_database,
    build_skewed_fleet,
    derive_corrections,
    summarize,
)


def obs(kind, est, act, input_rows=0, fingerprint=None, ndv_target=None):
    return NodeObservation(
        kind=kind,
        label=kind,
        estimated_rows=est,
        actual_rows=act,
        input_rows=input_rows,
        q_error=q_error(est, act),
        predicate_fingerprint=fingerprint,
        ndv_target=ndv_target,
    )


class TestDeriveCorrections:
    def test_filter_selectivity_is_row_weighted(self):
        observations = [
            obs("FILTER", 100, 10, input_rows=1000, fingerprint="t.a = :p"),
            obs("FILTER", 100, 30, input_rows=1000, fingerprint="t.a = :p"),
        ]
        corrections = derive_corrections(observations)
        assert abs(corrections.selectivity["t.a = :p"] - 0.02) < 1e-9

    def test_accurate_estimates_yield_no_churn(self):
        observations = [
            obs("FILTER", 100, 101, input_rows=1000, fingerprint="t.a = :p"),
            obs(
                "GROUP_HASH", 12, 12,
                ndv_target=("t", ("a",)),
            ),
        ]
        assert len(derive_corrections(observations)) == 0

    def test_group_observation_corrects_ndv(self):
        observations = [
            obs("GROUP_HASH", 6, 78, ndv_target=("t", ("a", "b"))),
            obs("GROUP_HASH", 6, 64, ndv_target=("t", ("a", "b"))),
            obs("DISTINCT_HASH", 3, 29, ndv_target=("t", ("a",))),
        ]
        corrections = derive_corrections(observations)
        # Joint NDV takes the max observation (a lower bound under
        # filters); single columns also correct the per-column NDV.
        assert corrections.joint_ndv[("t", ("a", "b"))] == 78.0
        assert corrections.joint_ndv[("t", ("a",))] == 29.0
        assert corrections.ndv[("t", "a")] == 29.0

    def test_tiny_inputs_are_ignored(self):
        observations = [
            obs("FILTER", 100, 1, input_rows=4, fingerprint="t.a = :p"),
        ]
        assert len(derive_corrections(observations)) == 0


class TestFeedbackRound:
    def test_one_round_improves_and_preserves_rows(self):
        database = build_skewed_database()
        fleet = build_skewed_fleet(rounds=3)
        with FleetRunner(database, fleet) as runner:
            report = runner.run_feedback_round()
            log = runner.service.plan_regressions()

        assert report.applied > 0
        assert len(report.corrections.selectivity) > 0

        before = report.baseline.qerror()
        after = report.final.qerror()
        assert after.geomean < before.geomean
        for kind, value in after.by_kind.items():
            assert value <= before.by_kind.get(kind, 1.0) + 1e-9, kind

        # The hard invariant: estimates moved, results did not.
        assert report.mismatches() == []
        # Nothing regressed got through the gate.
        assert all(r.action == "incumbent-retained" for r in log)

    def test_overrides_ride_stats_version(self):
        database = build_skewed_database()
        catalog = database.catalog
        version = catalog.stats_version
        corrections = StatsCorrections()
        corrections.add_selectivity("events.kind = :__p0", 0.5)
        assert catalog.apply_feedback(corrections) == 1
        assert catalog.stats_version == version + 1
        # An empty batch must not churn the plan cache.
        assert catalog.apply_feedback(StatsCorrections()) == 0
        assert catalog.stats_version == version + 1
        catalog.clear_feedback()
        assert len(catalog.stats_overrides) == 0
        assert catalog.stats_version == version + 2

    def test_summarize_empty_is_identity(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.geomean == 1.0
