"""QGM rewrites: view merging and predicate pushdown."""

import pytest

from repro import Column, Database, TableSchema
from repro.errors import QgmError
from repro.expr import col
from repro.parser import parse_query
from repro.qgm import (
    BaseTableQuantifier,
    GroupByBox,
    SelectBox,
    merge_views,
    normalize,
    push_down_predicates,
    rewrite,
)
from repro.sqltypes import INTEGER


@pytest.fixture
def db():
    database = Database()
    for name in ("t", "u"):
        database.create_table(
            TableSchema(
                name,
                [
                    Column("a", INTEGER, nullable=False),
                    Column("b", INTEGER),
                ],
                primary_key=("a",),
            )
        )
    return database


class TestViewMerging:
    def test_simple_view_merges(self, db):
        box = parse_query(
            "select v.a from (select a, b from t where b > 1) v where v.a < 5",
            db.catalog,
        )
        merged = merge_views(box)
        assert all(
            isinstance(q, BaseTableQuantifier) for q in merged.quantifiers()
        )
        predicate = str(merged.predicate)
        assert "t.b > 1" in predicate and "t.a < 5" in predicate

    def test_renamed_view_columns_substituted(self, db):
        box = parse_query(
            "select v.total from (select a + b as total from t) v",
            db.catalog,
        )
        merged = merge_views(box)
        assert "(t.a + t.b)" in str(merged.items[0].expression)

    def test_nested_views_merge(self, db):
        box = parse_query(
            "select w.a from "
            "(select v.a from (select a from t where b = 1) v) w",
            db.catalog,
        )
        merged = merge_views(box)
        assert all(
            isinstance(q, BaseTableQuantifier) for q in merged.quantifiers()
        )

    def test_view_join_merges_into_parent(self, db):
        box = parse_query(
            "select v.a, u.b from (select a from t) v, u where v.a = u.a",
            db.catalog,
        )
        merged = merge_views(box)
        aliases = {q.alias for q in merged.quantifiers()}
        assert aliases == {"t", "u"}

    def test_distinct_view_not_merged(self, db):
        box = parse_query(
            "select v.a from (select distinct a from t) v",
            db.catalog,
        )
        merged = merge_views(box)
        assert not isinstance(merged.quantifiers()[0], BaseTableQuantifier)

    def test_order_requirement_rewritten(self, db):
        box = parse_query(
            "select v.s from (select a as s from t) v order by v.s",
            db.catalog,
        )
        merged = merge_views(box)
        assert merged.output_order.columns == (col("t", "a"),)


class TestPredicatePushdown:
    def test_having_on_group_columns_pushes_down(self, db):
        box = parse_query(
            "select a, sum(b) as total from t group by a having a > 3",
            db.catalog,
        )
        pushed = push_down_predicates(merge_views(box))
        block = normalize(pushed)
        assert block.having is None
        assert "t.a > 3" in str(block.predicate)

    def test_having_on_aggregate_stays(self, db):
        box = parse_query(
            "select a, sum(b) as total from t group by a having sum(b) > 3",
            db.catalog,
        )
        block = normalize(rewrite(box))
        assert block.having is not None
        assert block.predicate is None

    def test_mixed_having_splits(self, db):
        box = parse_query(
            "select a, sum(b) as total from t group by a "
            "having a > 3 and sum(b) > 5",
            db.catalog,
        )
        block = normalize(rewrite(box))
        assert "t.a > 3" in str(block.predicate)
        assert "> 5" in str(block.having)


class TestNormalize:
    def test_plain_block(self, db):
        block = normalize(rewrite(parse_query("select a from t", db.catalog)))
        assert not block.has_group_by()
        assert block.tables == {"t": "t"}

    def test_group_block(self, db):
        block = normalize(
            rewrite(
                parse_query(
                    "select a, sum(b) as s from t group by a", db.catalog
                )
            )
        )
        assert block.has_group_by()
        assert block.group_columns == [col("t", "a")]

    def test_output_columns(self, db):
        block = normalize(
            rewrite(
                parse_query(
                    "select a, sum(b) as s from t group by a", db.catalog
                )
            )
        )
        assert block.output_columns() == [col("t", "a"), col("", "s")]
