"""Acceptance: an injected memo-poisoning bug is caught and shrunk.

PR 1's memo layer is exactly the surface where a cache bug would
silently corrupt plans, so this test *injects* one — a reduce-memo whose
``get`` claims every order specification reduces to empty, which makes
Test Order vacuously true and licenses the optimizer to elide sorts the
data needs — and demands that:

1. the config-matrix oracle catches it (the disabled baseline and the
   reference stay honest, so poisoned configs diverge), and
2. the delta-debugging shrinker reduces the failure to a minimal repro
   of at most 3 clauses whose emitted pytest case is valid Python.

The poison is confined to a patched ``memo_for``: it hands out fresh
lying tables without touching the real registry, and the registry is
cleared afterwards regardless.
"""

import pytest

from repro.core import context as context_module
from repro.core import memo as memo_module
from repro.core.memo import clear_memos
from repro.core.ordering import OrderSpec
from repro.verify.gen import QueryGenerator, generate_schema
from repro.verify.oracle import check_query, full_matrix
from repro.verify.shrink import shrink


class _PoisonedReduce(dict):
    """A reduce-memo claiming every spec reduces to the empty order."""

    _EMPTY = OrderSpec()

    def get(self, key, default=None):
        return self._EMPTY


def _poisoned_memo_for(fingerprint):
    memo = memo_module.ContextMemo()
    memo.reduce = _PoisonedReduce()
    return memo


@pytest.fixture
def poisoned_memo(monkeypatch):
    # context.py binds memo_for by name at import; patch that binding.
    monkeypatch.setattr(context_module, "memo_for", _poisoned_memo_for)
    yield
    clear_memos()


def test_memo_poisoning_is_caught_and_shrunk(poisoned_memo):
    schema = generate_schema(7)
    db = schema.build()
    generator = QueryGenerator(schema, 7)
    configs = full_matrix()

    failing = None
    for _ in range(40):
        spec = generator.generate()
        if spec.raw is not None:
            continue
        if check_query(db, spec.sql(), configs):
            failing = spec
            break
    assert failing is not None, (
        "poisoned reduce memo produced no oracle mismatch in 40 queries — "
        "the differential oracle is not sensitive to memo corruption"
    )

    result = shrink(schema, failing, configs)
    assert result.mismatches, "shrinker lost the failure"
    assert result.spec.clause_count() <= 3, (
        f"repro not minimal: {result.spec.clause_count()} clauses "
        f"({result.sql})"
    )
    # The shrunken database is tiny too, not just the query.
    assert sum(len(t.rows) for t in result.schema.tables) <= 6

    case = result.pytest_case("test_emitted_repro")
    compile(case, "<emitted>", "exec")  # ready-to-paste means parseable


def test_emitted_case_passes_once_bug_is_fixed(poisoned_memo, monkeypatch):
    """The emitted pytest case must go green when the poison is removed
    — i.e. it reproduces the *bug*, not some artifact of the harness."""
    schema = generate_schema(7)
    db = schema.build()
    generator = QueryGenerator(schema, 7)
    configs = full_matrix()
    failing = None
    for _ in range(40):
        spec = generator.generate()
        if spec.raw is None and check_query(db, spec.sql(), configs):
            failing = spec
            break
    assert failing is not None
    result = shrink(schema, failing, configs)
    case = result.pytest_case("emitted_repro")

    namespace = {}
    exec(compile(case, "<emitted>", "exec"), namespace)

    # Still poisoned: the emitted case must fail.
    with pytest.raises(AssertionError):
        namespace["emitted_repro"]()

    # Un-poison ("fix the bug"): the emitted case must pass.
    monkeypatch.setattr(context_module, "memo_for", memo_module.memo_for)
    clear_memos()
    namespace["emitted_repro"]()


def test_shrink_rejects_non_failing_input():
    schema = generate_schema(3)
    generator = QueryGenerator(schema, 3)
    spec = generator.generate()
    with pytest.raises(ValueError):
        shrink(schema, spec, full_matrix())
