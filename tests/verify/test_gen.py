"""Generator determinism: a fixed seed pins schema and SQL byte-for-byte.

Fuzz coverage is defined by the draw sequence; a refactor that silently
changes it would quietly re-aim the whole differential harness. Two
guards: independent generator instances must agree exactly, and a
pinned digest of the seed-7 corpus must not drift (update the constant
*consciously* when changing the generator).
"""

import hashlib

from repro.verify.gen import GenConfig, QueryGenerator, generate_schema

# sha256 of the first 50 seed-7 queries joined by newlines (see
# corpus() below). Changing the generator changes this — update it
# deliberately, never to silence a failure you don't understand.
#
# Last deliberate update: the schema generator now hash- or
# range-partitions a random subset of fact/child tables so the
# differential matrix exercises partition pruning, exchange operators,
# and partition-wise joins. Partitioning draws come from an rng stream
# *independent* of the schema/query rngs (``partition-{seed}``), so the
# SQL draw sequence — and therefore this digest — is unchanged on
# purpose: the same pinned queries now also run against partitioned
# physical layouts. The digest was recomputed and verified identical.
#
# Previous update: the fact table gained a NOT NULL date column
# and the generator now emits monotonic derived select items
# (``val + 3 AS vplus``, ``year(d) AS dy``, ...) orderable by alias,
# monotone-wrapped join keys (``r.id + 1 = s.rid + 1``), and derived
# views with computed monotonic columns — so fuzzing exercises
# order-dependency harvesting, not just plain column orders.
SEED7_CORPUS_SHA256 = (
    "5bf07270033423a36cbb16b100b77a243253cb83fedfe2b6069a51f15e32b7b8"
)


def corpus(seed: int, n: int = 50) -> str:
    schema = generate_schema(seed)
    generator = QueryGenerator(schema, seed)
    return "\n".join(generator.generate().sql() for _ in range(n))


def test_same_seed_byte_identical_sql():
    assert corpus(7) == corpus(7)
    assert corpus(123) == corpus(123)


def test_different_seeds_differ():
    assert corpus(7) != corpus(8)


def test_schema_generation_deterministic():
    first = generate_schema(11, GenConfig(tables=5))
    second = generate_schema(11, GenConfig(tables=5))
    assert [t.name for t in first.tables] == [t.name for t in second.tables]
    for a, b in zip(first.tables, second.tables):
        assert a.rows == b.rows
        assert a.indexes == b.indexes
        assert a.primary_key == b.primary_key


def test_seed7_corpus_pinned():
    digest = hashlib.sha256(corpus(7).encode()).hexdigest()
    assert digest == SEED7_CORPUS_SHA256, (
        "the seed-7 fuzz corpus changed; if the generator change is "
        "intentional, update SEED7_CORPUS_SHA256 here"
    )


def test_partitioning_assignment_deterministic():
    """Partition specs are seeded, varied, and never land on dims."""
    first = generate_schema(4, GenConfig(tables=5))
    second = generate_schema(4, GenConfig(tables=5))
    for a, b in zip(first.tables, second.tables):
        if a.partitioning is None:
            assert b.partitioning is None
        else:
            assert a.partitioning.describe() == b.partitioning.describe()
    for schema in (first, second):
        for table in schema.tables:
            if table.role == "dim":
                assert table.partitioning is None
    # Across a modest seed range both flavors must appear (coverage
    # guard: a generator change that stops emitting one kind should
    # fail loudly, like the corpus digest).
    kinds = {
        t.partitioning.kind
        for seed in range(12)
        for t in generate_schema(seed).tables
        if t.partitioning is not None
    }
    assert kinds == {"hash", "range"}


def test_row_scale_scales_rows():
    small = generate_schema(3, GenConfig(row_scale=0.5))
    big = generate_schema(3, GenConfig(row_scale=2.0))
    assert len(big.fact.rows) > len(small.fact.rows)


def test_table_count_configurable():
    wide = generate_schema(5, GenConfig(tables=5))
    assert len(wide.tables) == 5
    assert [t.role for t in wide.tables] == [
        "fact",
        "child",
        "dim",
        "child",
        "dim",
    ]


def test_single_table_schema_generates_queries():
    schema = generate_schema(1, GenConfig(tables=1))
    generator = QueryGenerator(schema, 1, GenConfig(tables=1))
    for _ in range(20):
        spec = generator.generate()
        assert spec.raw is None  # no children -> no unions/deriveds
        assert spec.tables == ("r",)
        assert "from r" in spec.sql()
