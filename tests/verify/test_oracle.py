"""Unit coverage for the differential oracle itself.

The oracle must (a) stay green on a correct engine, and (b) actually
fire on each mismatch kind — an oracle that cannot fail verifies
nothing. The end-to-end injected-bug path lives in ``test_shrink.py``.
"""

from repro import Column, Database, OptimizerConfig, TableSchema
from repro.sqltypes import INTEGER
from repro.verify.oracle import (
    Mismatch,
    check_query,
    full_matrix,
    output_order_positions,
    run_audit_battery,
    run_fuzz,
    tier1_matrix,
    _order_violation,
)


def tiny_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(1, 10), (2, 5), (3, None)],
    )
    return db


def test_full_matrix_covers_all_toggle_combinations():
    configs = full_matrix()
    assert len(configs) == 129  # 2^7 feature combos + master-off baseline
    combos = {
        (
            c.enable_reduction,
            c.enable_cover,
            c.enable_sort_ahead,
            c.enable_hash_join,
            c.use_order_dependencies,
            c.enable_partial_sort,
            c.enable_partitioning,
        )
        for name, c in configs.items()
        if name != "disabled"
    }
    assert len(combos) == 128
    assert not configs["disabled"].order_optimization
    for config in configs.values():
        assert config.enable_hash_join == config.enable_hash_group_by


def test_tier1_matrix_matches_historical_configs():
    assert set(tier1_matrix()) == {
        "full",
        "disabled",
        "no-hash",
        "no-sortahead",
        "no-od",
        "no-partial-sort",
        "no-partitioning",
    }


def test_green_on_correct_engine():
    db = tiny_db()
    assert check_query(db, "select x, y from t order by x desc") == []
    assert check_query(db, "select sum(y) as s from t") == []


def test_detects_row_mismatch_against_forced_expectation():
    db = tiny_db()
    mismatches = check_query(
        db,
        "select x from t",
        tier1_matrix(),
        expected=[(999,)],
    )
    assert len(mismatches) == len(tier1_matrix())
    assert {m.kind for m in mismatches} == {"rows"}


def test_order_violation_detection():
    plan = [(0, False)]
    assert _order_violation([(1,), (2,), (3,)], plan) is None
    assert _order_violation([(2,), (1,)], plan) is not None
    # Descending direction flips the expectation.
    descending = [(0, True)]
    assert _order_violation([(3,), (2,)], descending) is None
    assert _order_violation([(2,), (3,)], descending) is not None


def test_output_order_positions_skips_hidden_columns():
    db = tiny_db()
    positions = output_order_positions(
        db, "select y from t order by x, y desc"
    )
    # x is not selected (hidden); only y's position survives.
    assert positions == [(0, True)]


def test_error_reported_as_mismatch():
    db = tiny_db()
    configs = {"full": OptimizerConfig()}
    mismatches = check_query(db, "select nope from t", configs)
    assert mismatches and all(
        isinstance(m, Mismatch) and m.kind == "error" for m in mismatches
    )


def test_audit_battery_green():
    assert run_audit_battery() == []


def test_audit_catches_lying_order_dependency():
    """Negative control: a node *claiming* a false OD must be flagged.

    ``x |-> y`` is false in tiny_db (y is not monotone in x), so an
    audit that stays green on this claim would verify nothing.
    """
    from dataclasses import replace

    from repro.api import plan_query
    from repro.core.od import ODSet, OrderDependency
    from repro.expr import col
    from repro.verify.oracle import audit_node

    db = tiny_db()
    plan = plan_query(db, "select x, y from t order by x")
    root = plan.root
    lying = ODSet([OrderDependency(col("t", "x"), col("t", "y"), False)])
    poisoned = replace(
        root, properties=replace(root.properties, ods=lying)
    )
    violations = audit_node(db, poisoned)
    assert any("OD" in violation for violation in violations), violations
    # The honest node stays clean.
    assert audit_node(db, root) == []


def test_small_fuzz_run_green():
    report = run_fuzz(seed=99, n=10, configs=tier1_matrix())
    assert report.ok, report.summary()
    assert report.queries == 10
    assert report.executions == 70  # 10 queries x 7 tier-1 configs
