"""Pin the NULL-ordering convention on both sides of the diff.

One documented convention everywhere
(:func:`repro.sqltypes.values.sort_key`): NULLs sort *after* all
non-NULL values ascending and *first* descending (DB2 sorts NULLs
high). The reference evaluator and the executor must both honor it — if
either drifted, differential fuzzing would report phantom mismatches or,
worse, agree on the wrong order.
"""

import pytest

from repro import (
    Column,
    Database,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.sqltypes import INTEGER
from repro.sqltypes.values import sort_key
from repro.verify.reference import reference_query

CONFIGS = [OptimizerConfig(), OptimizerConfig.disabled()]


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(1, 30), (2, None), (3, 10), (4, None), (5, 20)],
    )
    return database


def test_sort_key_places_nulls_high():
    values = [None, 5, None, -7, 0]
    ascending = sorted(values, key=sort_key)
    assert ascending == [-7, 0, 5, None, None]
    descending = sorted(values, key=lambda v: sort_key(v, True))
    assert descending == [None, None, 5, 0, -7]


def test_reference_nulls_last_ascending(db):
    rows = reference_query(db, "select y from t order by y")
    assert rows == [(10,), (20,), (30,), (None,), (None,)]


def test_reference_nulls_first_descending(db):
    rows = reference_query(db, "select y from t order by y desc")
    assert rows == [(None,), (None,), (30,), (20,), (10,)]


@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
def test_executor_agrees_with_reference_on_null_placement(
    db, config_index
):
    config = CONFIGS[config_index]
    for sql in (
        "select y from t order by y",
        "select y from t order by y desc",
        "select y, x from t order by y desc, x",
    ):
        assert (
            run_query(db, sql, config=config).rows
            == reference_query(db, sql)
        ), sql
