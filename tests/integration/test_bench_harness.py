"""The benchmark harness: registry, rendering, and one cheap experiment."""

import pytest

from repro.bench import available_experiments, run_experiment
from repro.bench.harness import ExperimentReport
from repro.errors import BenchmarkError


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = {experiment_id for experiment_id, _ in available_experiments()}
        assert {"table1", "fig1", "fig6", "fig7", "fig8", "complexity"} <= ids

    def test_unknown_experiment(self):
        with pytest.raises(BenchmarkError):
            run_experiment("table99")

    def test_titles_present(self):
        for _experiment_id, title in available_experiments():
            assert title


class TestReportRendering:
    def test_table_rendering(self):
        report = ExperimentReport("x", "title", headers=("a", "bb"))
        report.add_row(1, "yes")
        report.add_row(22, "no")
        text = report.render()
        assert "== x: title ==" in text
        assert "a" in text and "bb" in text
        assert "22" in text

    def test_blocks_and_notes(self):
        report = ExperimentReport("x", "t")
        report.add_block("plan", "line1\nline2")
        report.add_note("hello")
        text = report.render()
        assert "-- plan --" in text
        assert "line1" in text
        assert "note: hello" in text


class TestFig6Experiment:
    """fig6 is the cheapest full experiment; run it as a harness test."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_experiment("fig6")

    def test_production_single_sort(self, report):
        rows = {row[0]: row for row in report.rows}
        assert rows["order opt ON"][1] == 1
        assert rows["order opt ON"][2] == 0  # no order-by sorts

    def test_disabled_needs_more_sorts(self, report):
        rows = {row[0]: row for row in report.rows}
        assert rows["order opt OFF"][1] > rows["order opt ON"][1]

    def test_plans_recorded(self, report):
        assert "order opt ON" in report.data
        plan = report.data["order opt ON"]
        assert "sort" in plan.explain()
