"""Randomized query fuzzing: generated SQL vs the brute-force reference.

A seeded generator produces queries over a three-table schema covering
joins (inner and left outer), filters (constants, ranges, IN, IS NULL),
grouping with every aggregate kind, DISTINCT, ORDER BY with mixed
directions, and FETCH FIRST. Every query runs under four optimizer
configurations and must match the reference row set; ordered queries
must also come out ordered.
"""

import random

import pytest

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.sqltypes import INTEGER, varchar
from repro.sqltypes.values import sort_key
from tests.reference import reference_query


@pytest.fixture(scope="module")
def db():
    rng = random.Random(2026)
    database = Database()
    database.create_table(
        TableSchema(
            "r",
            [
                Column("id", INTEGER, nullable=False),
                Column("grp", INTEGER),
                Column("val", INTEGER),
            ],
            primary_key=("id",),
        ),
        rows=[
            (
                i,
                rng.choice([0, 1, 2, 3, None]),
                rng.randint(0, 50),
            )
            for i in range(30)
        ],
    )
    database.create_table(
        TableSchema(
            "s",
            [
                Column("rid", INTEGER, nullable=False),
                Column("tag", varchar(4)),
                Column("amt", INTEGER),
            ],
        ),
        rows=[
            (rng.randint(0, 45), rng.choice(["a", "b", "c"]), rng.randint(1, 20))
            for _ in range(60)
        ],
    )
    database.create_table(
        TableSchema(
            "u",
            [Column("g", INTEGER, nullable=False), Column("w", INTEGER)],
        ),
        rows=[(i % 4, rng.randint(0, 9)) for i in range(16)],
    )
    database.create_index(Index.on("r_id", "r", ["id"], unique=True, clustered=True))
    database.create_index(Index.on("s_rid", "s", ["rid"], clustered=True))
    database.create_index(Index.on("r_grp", "r", ["grp"]))
    return database


class QueryGenerator:
    """Seeded random single-block query generator for the fuzz schema."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def generate(self) -> str:
        rng = self.rng
        if rng.random() < 0.12:
            return self._generate_union()
        if rng.random() < 0.12:
            return self._generate_derived()
        shape = rng.choice(
            ["single", "single", "join", "join", "outer", "triple"]
        )
        if shape == "single":
            tables, columns = "r", ["r.id", "r.grp", "r.val"]
        elif shape == "join":
            tables = "r, s"
            columns = ["r.id", "r.grp", "r.val", "s.tag", "s.amt"]
        elif shape == "outer":
            tables = "r left join s on r.id = s.rid"
            columns = ["r.id", "r.grp", "r.val", "s.tag", "s.amt"]
        else:
            tables = "r, s, u"
            columns = ["r.id", "r.grp", "s.amt", "u.w"]

        where = self._where(shape, rng)
        group_by, select_list, order_candidates = self._select(
            shape, columns, rng
        )
        distinct = (
            "distinct " if not group_by and rng.random() < 0.2 else ""
        )
        sql = f"select {distinct}{select_list} from {tables}"
        if where:
            sql += f" where {where}"
        if group_by:
            sql += f" group by {group_by}"
        if order_candidates and rng.random() < 0.8:
            count = rng.randint(1, min(2, len(order_candidates)))
            keys = rng.sample(order_candidates, count)
            rendered = [
                key + (" desc" if rng.random() < 0.4 else "")
                for key in keys
            ]
            sql += " order by " + ", ".join(rendered)
            if rng.random() < 0.25:
                sql += f" fetch first {rng.randint(1, 8)} rows only"
        return sql

    def _generate_union(self) -> str:
        rng = self.rng
        all_kw = " all" if rng.random() < 0.5 else ""
        left = rng.choice(
            ["select id, val from r", "select rid, amt from s"]
        )
        right = rng.choice(
            [
                "select rid, amt from s where amt > 5",
                "select id, val from r where val < 30",
                "select g, w from u",
            ]
        )
        sql = f"{left} union{all_kw} {right}"
        if rng.random() < 0.7:
            direction = " desc" if rng.random() < 0.4 else ""
            sql += f" order by 1{direction}, 2"
        return sql

    def _generate_derived(self) -> str:
        rng = self.rng
        view = rng.choice(
            [
                "(select rid, count(*) as n, sum(amt) as total "
                "from s group by rid)",
                "(select distinct tag, rid from s)",
                "(select grp, max(val) as hi from r group by grp)",
            ]
        )
        if "n," in view or "n, " in view or "as n" in view:
            columns = ["v.rid", "v.n", "v.total"]
        elif "tag" in view:
            columns = ["v.tag", "v.rid"]
        else:
            columns = ["v.grp", "v.hi"]
        chosen = rng.sample(columns, rng.randint(1, len(columns)))
        sql = f"select {', '.join(chosen)} from {view} v"
        if rng.random() < 0.5 and "v.rid" in columns:
            sql = (
                f"select r.id, {', '.join(chosen)} from {view} v, r "
                "where v.rid = r.id"
            )
            chosen = ["r.id"] + chosen
        if rng.random() < 0.7:
            key = rng.choice(chosen)
            direction = " desc" if rng.random() < 0.4 else ""
            sql += f" order by {key}{direction}"
        return sql

    def _where(self, shape: str, rng: random.Random) -> str:
        conjuncts = []
        if shape in ("join", "triple"):
            conjuncts.append("r.id = s.rid")
        if shape == "triple":
            conjuncts.append("r.grp = u.g")
        options = [
            "r.val > 25",
            "r.val between 10 and 40",
            "r.grp = 2",
            "r.grp is null",
            "r.grp is not null",
            "r.id < 20",
        ]
        if shape in ("join", "outer", "triple"):
            options += ["s.amt > 10", "s.tag in ('a', 'b')", "s.tag = 'c'"]
        for option in rng.sample(options, rng.randint(0, 2)):
            conjuncts.append(option)
        return " and ".join(conjuncts)

    def _select(self, shape: str, columns, rng: random.Random):
        if rng.random() < 0.4:
            # Aggregation query.
            group_columns = rng.sample(
                [c for c in columns if "amt" not in c and "val" not in c],
                rng.randint(1, 2),
            )
            value = "s.amt" if any("s." in c for c in columns) else "r.val"
            aggregates = rng.sample(
                [
                    f"count(*) as n",
                    f"sum({value}) as total",
                    f"min({value}) as lo",
                    f"max({value}) as hi",
                    f"avg({value}) as mean",
                    f"count(distinct {value}) as nd",
                ],
                rng.randint(1, 2),
            )
            select_list = ", ".join(group_columns + aggregates)
            order_candidates = group_columns + [
                a.split(" as ")[1] for a in aggregates
            ]
            return ", ".join(group_columns), select_list, order_candidates
        chosen = rng.sample(columns, rng.randint(1, len(columns)))
        return "", ", ".join(chosen), chosen


CONFIGS = {
    "full": OptimizerConfig(),
    "disabled": OptimizerConfig.disabled(),
    "no-hash": OptimizerConfig(
        enable_hash_join=False, enable_hash_group_by=False
    ),
    "no-sortahead": OptimizerConfig(enable_sort_ahead=False),
}


def normalized(rows):
    return sorted(
        rows, key=lambda row: tuple(sort_key(value) for value in row)
    )


@pytest.mark.parametrize("seed", range(40))
def test_fuzzed_query_matches_reference(db, seed):
    generator = QueryGenerator(seed)
    for _ in range(3):
        sql = generator.generate()
        expected = reference_query(db, sql)
        fetch_limited = "fetch first" in sql
        for name, config in CONFIGS.items():
            result = run_query(db, sql, config=config)
            if fetch_limited and "order by" in sql:
                # With ties at the cut-off, any valid top-k is correct;
                # compare multisets of the sort keys instead of rows.
                assert len(result.rows) == len(expected), (
                    f"{sql!r} under {name}\n{result.plan.explain()}"
                )
            else:
                assert normalized(result.rows) == normalized(expected), (
                    f"{sql!r} under {name}\n{result.plan.explain()}"
                )
