"""Randomized query fuzzing, rebased onto :mod:`repro.verify`.

The generator, reference oracle, and config-matrix diffing all live in
the library now (``repro.verify.gen`` / ``repro.verify.oracle``); this
module just drives them inside the tier-1 budget:

* the tier-1 pass runs 40 seeds x 3 queries under the seven tier-1
  configs (the seed test's historical four plus ``no-od``,
  ``no-partial-sort``, and ``no-partitioning``);
* the ``slow``-marked deep pass runs 500 queries under the *full*
  129-config feature-toggle matrix with plan-property auditing — opt in
  with ``pytest -m slow`` (or run ``python -m repro.verify fuzz``).
"""

import pytest

from repro.verify.gen import GenConfig, QueryGenerator, generate_schema
from repro.verify.oracle import (
    check_query,
    full_matrix,
    run_fuzz,
    tier1_matrix,
)
from repro.verify.shrink import shrink


@pytest.fixture(scope="module")
def harness():
    schema = generate_schema(2026)
    return schema, schema.build()


@pytest.fixture(scope="module")
def configs():
    return tier1_matrix()


@pytest.mark.parametrize("seed", range(40))
def test_fuzzed_query_matches_reference(harness, configs, seed):
    schema, db = harness
    generator = QueryGenerator(schema, seed)
    for _ in range(3):
        spec = generator.generate()
        mismatches = check_query(db, spec.sql(), configs)
        assert not mismatches, "\n".join(str(m) for m in mismatches)


@pytest.mark.slow
def test_deep_fuzz_full_matrix_with_audit():
    """500 queries, all 129 configs, auditing the full-featured plan.

    On failure the minimal shrunk repro is part of the message — paste
    it into a regression test rather than chasing the seed.
    """
    report = run_fuzz(
        seed=7,
        n=500,
        gen_config=GenConfig(tables=4),
        configs=full_matrix(),
        audit_configs=("full",),
    )
    details = []
    for failure in report.failures:
        if failure.spec.raw is None:
            result = shrink(failure.schema, failure.spec, full_matrix())
            details.append(result.pytest_case())
        else:
            details.append(failure.spec.sql())
    assert report.ok, report.summary() + "\n" + "\n".join(details)
