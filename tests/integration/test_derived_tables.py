"""Derived tables: unmergeable FROM subqueries planned as sub-plans.

Mergeable views were always inlined (view merging); grouped, DISTINCT,
and UNION views are planned separately and exposed to the outer block
with their order/key/FD properties renamed — so the outer block's order
optimization still sees, e.g., that a grouped view is keyed by its
grouping columns.
"""

import random

import pytest

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.expr import col
from repro.optimizer.plan import OpKind
from repro.sqltypes import INTEGER
from repro.sqltypes.values import sort_key
from tests.reference import reference_query


@pytest.fixture(scope="module")
def db():
    rng = random.Random(23)
    database = Database()
    database.create_table(
        TableSchema(
            "a",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, rng.randint(0, 9)) for i in range(40)],
    )
    database.create_table(
        TableSchema(
            "b",
            [Column("x", INTEGER, nullable=False), Column("z", INTEGER)],
        ),
        rows=[(rng.randint(0, 50), rng.randint(0, 5)) for _ in range(60)],
    )
    database.create_index(Index.on("a_x", "a", ["x"], unique=True, clustered=True))
    return database


CONFIGS = {
    "full": OptimizerConfig(),
    "disabled": OptimizerConfig.disabled(),
    "no-hash": OptimizerConfig(
        enable_hash_join=False, enable_hash_group_by=False
    ),
}

QUERIES = [
    # Grouped view with outer filter and order.
    "select v.y, v.n from (select y, count(*) as n from a group by y) v "
    "where v.n > 2 order by v.n desc, v.y",
    # Grouped view joined back to a base table.
    "select v.y, v.n, a.x from "
    "(select y, count(*) as n from a group by y) v, a "
    "where v.y = a.y and a.x < 10 order by a.x",
    # DISTINCT view.
    "select d.x from (select distinct x from b) d order by d.x",
    # Aggregation over a grouped view (two levels of grouping).
    "select t.n, count(*) as groups_with_n from "
    "(select y, count(*) as n from a group by y) t "
    "group by t.n order by t.n",
    # UNION view.
    "select w.s, count(*) as c from "
    "(select x as s from a union select x from b) w "
    "group by w.s order by c desc, w.s fetch first 5 rows only",
    # Outer join against a grouped view.
    "select a.x, v.n from a left join "
    "(select y, count(*) as n from a group by y) v on a.y = v.y "
    "order by a.x",
    # Two derived tables joined together.
    "select p.y, q.z from "
    "(select distinct y from a) p, (select distinct z from b) q "
    "where p.y = q.z order by p.y",
]


def normalized(rows):
    return sorted(
        rows, key=lambda row: tuple(sort_key(value) for value in row)
    )


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("sql", QUERIES)
def test_derived_matches_reference(db, sql, config_name):
    expected = reference_query(db, sql)
    result = run_query(db, sql, config=CONFIGS[config_name])
    limited = "fetch first" in sql
    if limited:
        assert len(result.rows) == len(expected)
    else:
        assert normalized(result.rows) == normalized(expected), (
            f"{sql!r} under {config_name}\n{result.plan.explain()}"
        )


class TestDerivedProperties:
    def test_grouped_view_is_keyed_by_group_columns(self, db):
        from repro.api import plan_query

        plan = plan_query(
            db,
            "select v.y, v.n from "
            "(select y, count(*) as n from a group by y) v",
        )
        derived_nodes = [
            node
            for node in _walk(plan.root)
            if node.args.get("derived") == "v"
        ]
        assert derived_nodes
        keys = derived_nodes[0].properties.key_property.keys
        assert frozenset((col("v", "y"),)) in keys

    def test_group_fd_translates_to_view_columns(self, db):
        from repro.api import plan_query

        plan = plan_query(
            db,
            "select v.y, v.n from "
            "(select y, count(*) as n from a group by y) v",
        )
        derived_nodes = [
            node
            for node in _walk(plan.root)
            if node.args.get("derived") == "v"
        ]
        context = derived_nodes[0].properties.context()
        assert context.fds.determines([col("v", "y")], col("v", "n"))

    def test_order_by_view_key_plus_dependent_reduces(self, db):
        """ORDER BY (v.y, v.n): v.y keys the view so v.n is redundant —
        any sort is single-column."""
        from repro.api import plan_query

        plan = plan_query(
            db,
            "select v.y, v.n from "
            "(select y, count(*) as n from a group by y) v "
            "order by v.y, v.n",
        )
        for sort in plan.find_all(OpKind.SORT):
            assert len(sort.args["order"]) == 1


def _walk(node):
    yield node
    for child in node.children:
        yield from _walk(child)


class TestSortPushIntoView:
    """§5.1/§1: interesting orders push *into* views — the view offers
    an ordered candidate and the outer block skips its own sort."""

    def test_view_sort_serves_outer_order_by(self, db):
        from repro.api import plan_query
        from repro import OptimizerConfig

        config = OptimizerConfig(
            enable_hash_join=False, enable_hash_group_by=False
        )
        plan = plan_query(
            db,
            "select v.y, v.n from "
            "(select y, count(*) as n from a group by y) v order by v.y",
            config=config,
        )
        # At most one sort in the whole plan, and no order-by sort above
        # the derived boundary.
        assert plan.sort_count() <= 1
        order_sorts = [
            node
            for node in plan.find_all(OpKind.SORT)
            if node.args.get("reason") == "order by"
        ]
        assert not order_sorts

    def test_execution_ordered(self, db):
        result = run_query(
            db,
            "select v.y, v.n from "
            "(select y, count(*) as n from a group by y) v order by v.y",
        )
        values = [row[0] for row in result.rows]
        assert values == sorted(values)
