"""LEFT OUTER JOIN: correctness and the §4.1 one-directional FD."""

import random

import pytest

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.optimizer.plan import OpKind
from repro.sqltypes import INTEGER
from repro.sqltypes.values import sort_key
from tests.reference import reference_query


@pytest.fixture(scope="module")
def db():
    rng = random.Random(31)
    database = Database()
    database.create_table(
        TableSchema(
            "a",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, rng.randint(0, 9)) for i in range(40)],
    )
    # b covers only part of a's key range, guaranteeing padded rows,
    # and has duplicates per key.
    database.create_table(
        TableSchema(
            "b",
            [Column("x", INTEGER, nullable=False), Column("z", INTEGER)],
        ),
        rows=[(rng.randint(0, 60), rng.randint(0, 5)) for _ in range(60)],
    )
    database.create_table(
        TableSchema(
            "c",
            [Column("z", INTEGER, nullable=False), Column("w", INTEGER)],
        ),
        rows=[(i % 6, rng.randint(0, 3)) for i in range(12)],
    )
    database.create_index(Index.on("a_x", "a", ["x"], unique=True, clustered=True))
    database.create_index(Index.on("b_x", "b", ["x"], clustered=True))
    return database


CONFIGS = {
    "full": OptimizerConfig(),
    "disabled": OptimizerConfig.disabled(),
    "no-hash": OptimizerConfig(
        enable_hash_join=False, enable_hash_group_by=False
    ),
}

QUERIES = [
    # Basic padding.
    "select a.x, a.y, b.z from a left join b on a.x = b.x order by a.x",
    # ON-only predicate on the null side (filters before padding).
    "select a.x, b.z from a left outer join b on a.x = b.x and b.z > 2 "
    "order by a.x",
    # WHERE on the null side (filters after padding).
    "select a.x, b.z from a left join b on a.x = b.x where b.z = 3 "
    "order by a.x",
    # WHERE IS NULL — the anti-join idiom.
    "select a.x from a left join b on a.x = b.x where b.x is null "
    "order by a.x",
    # Aggregation over padded rows: COUNT(col) skips NULLs.
    "select a.x, count(b.z) as n, sum(b.z) as total from a "
    "left join b on a.x = b.x group by a.x order by a.x",
    # Outer join followed by an inner join.
    "select a.x, b.z, c.w from a left join b on a.x = b.x, c "
    "where b.z = c.z order by a.x, c.w",
    # Mixed: inner join then outer join.
    "select a.x, c.w, b.z from a inner join c on a.y = c.z "
    "left join b on a.x = b.x order by a.x, c.w, b.z",
]


def normalized(rows):
    return sorted(
        rows, key=lambda row: tuple(sort_key(value) for value in row)
    )


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("sql", QUERIES)
def test_outer_join_matches_reference(db, sql, config_name):
    expected = reference_query(db, sql)
    result = run_query(db, sql, config=CONFIGS[config_name])
    assert normalized(result.rows) == normalized(expected), (
        f"{sql!r} under {config_name}\n{result.plan.explain()}"
    )


class TestPaddingSemantics:
    def test_padded_rows_present(self, db):
        result = run_query(
            db, "select a.x, b.z from a left join b on a.x = b.x"
        )
        assert any(row[1] is None for row in result.rows)
        # Every a.x appears at least once.
        assert {row[0] for row in result.rows} == set(range(40))

    def test_on_constant_does_not_filter_outer(self, db):
        # ON b.z = 99 matches nothing: every outer row padded, none lost.
        result = run_query(
            db,
            "select a.x, b.z from a left join b on a.x = b.x and b.z = 99",
        )
        assert len(result.rows) == 40
        assert all(row[1] is None for row in result.rows)


class TestOneDirectionalFd:
    """§4.1: "If x = y is a join predicate for an outer join, then
    {x} -> {y} holds if x is a column from a non-null-supplying side."""

    def test_order_by_preserved_then_null_side_reduces(self, db):
        config = OptimizerConfig(
            enable_hash_join=False, enable_hash_group_by=False
        )
        result = run_query(
            db,
            "select a.x, b.x from a left join b on a.x = b.x "
            "order by a.x, b.x",
            config=config,
        )
        # (a.x, b.x) reduces to (a.x): any sort is single-column.
        for sort in result.plan.find_all(OpKind.SORT):
            assert len(sort.args["order"]) == 1

    def test_reverse_direction_does_not_reduce(self, db):
        from repro.core import OrderSpec, reduce_order
        from repro.expr import col
        from repro.core.context import OrderContext
        from repro.core.fd import fd

        # The FD is one-directional: {b.x} -> {a.x} must NOT hold.
        context = OrderContext.empty().with_fd(
            fd([col("a", "x")], [col("b", "x")])
        )
        spec = OrderSpec.of(col("b", "x"), col("a", "x"))
        assert reduce_order(spec, context) == spec

    def test_no_equivalence_class_across_outer_join(self, db):
        """Padded rows break x = y, so ORDER BY b.x must not be
        satisfied by an a.x order."""
        config = OptimizerConfig(
            enable_hash_join=False, enable_hash_group_by=False
        )
        result = run_query(
            db,
            "select a.x, b.x from a left join b on a.x = b.x "
            "order by b.x, a.x",
            config=config,
        )
        values = [
            (sort_key(row[1]), sort_key(row[0])) for row in result.rows
        ]
        assert values == sorted(values)


class TestOuterJoinPlanning:
    def test_join_order_follows_from_clause(self, db):
        result = run_query(
            db, "select a.x, b.z from a left join b on a.x = b.x"
        )
        # a must be the outer (preserved) side of the outer join.
        joins = (
            result.plan.find_all(OpKind.NLJ)
            + result.plan.find_all(OpKind.HASH_JOIN)
            + result.plan.find_all(OpKind.NLJ_INDEX)
        )
        outer_joins = [j for j in joins if j.args.get("left_outer")]
        assert outer_joins
        assert "a" in outer_joins[0].children[0].aliases()

    def test_preserved_side_order_propagates(self, db):
        config = OptimizerConfig(
            enable_hash_join=False, enable_hash_group_by=False
        )
        result = run_query(
            db,
            "select a.x, b.z from a left join b on a.x = b.x order by a.x",
            config=config,
        )
        order_sorts = [
            node
            for node in result.plan.find_all(OpKind.SORT)
            if node.args.get("reason") == "order by"
        ]
        assert not order_sorts  # a's index order flows through the join
