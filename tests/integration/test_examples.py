"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *argv: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *argv],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Redundancy elimination" in out
    assert "identical answers: True" in out


def test_order_algebra_tour():
    out = run_example("order_algebra_tour.py")
    assert "admits 16 orders" in out
    assert "(t.y)" in out  # the reduced §4.1 example


def test_tpcd_query3_tiny():
    out = run_example("tpcd_query3.py", "0.002")
    assert "wall-clock ratio" in out
    assert "ordered nested-loop join" in out


def test_warehouse_reporting():
    out = run_example("warehouse_reporting.py")
    assert "Constant-bound leading sort column" in out


def test_dashboard_queries():
    out = run_example("dashboard_queries.py")
    assert "top 5 accounts" in out
    assert "padded NULL" in out
