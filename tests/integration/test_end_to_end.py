"""End-to-end correctness: optimizer+executor vs the naive reference.

Every query runs four ways — order optimization on/off, hash operators
on/off — and each result must match the brute-force reference evaluator
(modulo row order, which is then checked separately against ORDER BY).
"""

import random

import pytest

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.core.ordering import SortDirection
from repro.sqltypes import DATE, INTEGER, decimal_type, varchar
from repro.sqltypes.values import sort_key
from tests.reference import reference_query


@pytest.fixture(scope="module")
def db():
    """Small enough for the Cartesian reference, rich enough to exercise
    keys, indexes, NULLs, dates and decimals."""
    rng = random.Random(99)
    database = Database()
    database.create_table(
        TableSchema(
            "cust",
            [
                Column("ck", INTEGER, nullable=False),
                Column("seg", varchar(10)),
                Column("bal", decimal_type(10, 2)),
            ],
            primary_key=("ck",),
        ),
        rows=[
            (i, rng.choice(["gold", "silver", None]), rng.randint(0, 1000))
            for i in range(25)
        ],
    )
    database.create_table(
        TableSchema(
            "ord",
            [
                Column("ok", INTEGER, nullable=False),
                Column("ck", INTEGER, nullable=False),
                Column("day", DATE),
                Column("pri", INTEGER),
            ],
            primary_key=("ok",),
        ),
        rows=[
            (
                i,
                rng.randint(0, 24),
                f"1995-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                rng.randint(0, 3),
            )
            for i in range(60)
        ],
    )
    database.create_table(
        TableSchema(
            "item",
            [
                Column("ok", INTEGER, nullable=False),
                Column("ln", INTEGER, nullable=False),
                Column("qty", INTEGER),
                Column("price", decimal_type(10, 2)),
            ],
            primary_key=("ok", "ln"),
        ),
        rows=[
            (ok, line, rng.randint(1, 9), rng.randint(1, 500))
            for ok in range(60)
            for line in range(rng.randint(1, 3))
        ],
    )
    database.create_index(Index.on("pk_cust", "cust", ["ck"], unique=True, clustered=True))
    database.create_index(Index.on("pk_ord", "ord", ["ok"], unique=True, clustered=True))
    database.create_index(Index.on("ord_ck", "ord", ["ck"]))
    database.create_index(Index.on("item_ok", "item", ["ok"], clustered=True))
    return database


CONFIGS = {
    "full": OptimizerConfig(),
    "disabled": OptimizerConfig.disabled(),
    "no-hash": OptimizerConfig(enable_hash_join=False, enable_hash_group_by=False),
    "no-sortahead": OptimizerConfig(enable_sort_ahead=False),
}

QUERIES = [
    "select ck, seg from cust order by ck",
    "select ck, seg, bal from cust where seg = 'gold' order by bal desc, ck",
    "select ck, seg from cust where bal > 500 order by seg, ck",
    "select distinct seg from cust",
    "select distinct pri, ck from ord order by pri",
    "select c.ck, o.ok from cust c, ord o where c.ck = o.ck order by c.ck",
    "select c.ck, o.ok, o.pri from cust c, ord o "
    "where c.ck = o.ck and o.pri = 2 order by o.ok desc",
    "select seg, count(*) as n, sum(bal) as total from cust "
    "group by seg order by seg",
    "select o.ck, count(*) as n from ord o group by o.ck order by n desc, o.ck",
    "select c.seg, sum(i.qty * i.price) as rev from cust c, ord o, item i "
    "where c.ck = o.ck and o.ok = i.ok group by c.seg order by rev desc",
    "select o.ok, o.day, sum(i.price) as rev from ord o, item i "
    "where o.ok = i.ok and o.day < date('1995-06-15') "
    "group by o.ok, o.day order by rev desc, o.day",
    "select pri, count(distinct ck) as customers from ord "
    "group by pri order by pri desc",
    "select ck, bal from cust where bal between 100 and 900 order by 2",
    "select c.ck, c.bal from cust c where c.seg is null order by c.ck",
    "select o.pri, avg(i.qty) as avg_qty from ord o, item i "
    "where o.ok = i.ok group by o.pri having count(*) > 5 order by o.pri",
    "select v.s, v.n from "
    "(select seg as s, count(*) as n from cust group by seg) v order by v.n",
    "select max(bal) as top, min(bal) as bottom from cust",
    "select c.ck, o.ok from cust c, ord o "
    "where c.ck = o.ck and c.ck = 7 order by o.ok",
]


def normalized(rows):
    return sorted(
        rows, key=lambda row: tuple(sort_key(value) for value in row)
    )


def check_order_by(rows, plan, sql, block_order):
    if block_order.is_empty():
        return
    # Recompute sort keys over output positions.
    positions = {}
    for index, name in enumerate(plan.output_names):
        positions[name] = index
    # Map order columns to output positions via the plan's final schema.
    schema = plan.root.properties.schema
    keys = []
    for key in block_order:
        if key.column in schema:
            keys.append(
                (schema.position(key.column), key.direction is SortDirection.DESC)
            )
    extracted = [
        tuple(sort_key(row[position], desc_) for position, desc_ in keys)
        for row in rows
    ]
    assert extracted == sorted(extracted), f"output not ordered for {sql}"


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("sql", QUERIES)
def test_matches_reference(db, sql, config_name):
    expected = reference_query(db, sql)
    result = run_query(db, sql, config=CONFIGS[config_name])
    assert normalized(result.rows) == normalized(expected), (
        f"wrong rows for {sql!r} under {config_name}\n"
        f"{result.plan.explain()}"
    )


@pytest.mark.parametrize("sql", QUERIES)
def test_output_respects_order_by(db, sql):
    from repro.parser import parse_query
    from repro.qgm import normalize as qgm_normalize, rewrite

    block = qgm_normalize(rewrite(parse_query(sql, db.catalog)))
    result = run_query(db, sql)
    check_order_by(result.rows, result.plan, sql, block.order_by)


def test_plans_agree_across_configs(db):
    """All configs compute identical result sets for every query."""
    for sql in QUERIES:
        results = [
            normalized(run_query(db, sql, config=config).rows)
            for config in CONFIGS.values()
        ]
        for other in results[1:]:
            assert other == results[0], sql
