"""CLI entry point and API-surface coverage."""

import pytest

from repro import Column, Database, TableSchema, run_query
from repro.bench.__main__ import main as bench_main
from repro.cost.model import Cost
from repro.sqltypes import INTEGER


class TestBenchCli:
    def test_list(self, capsys):
        assert bench_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_single_experiment(self, capsys):
        assert bench_main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "order opt ON" in out

    def test_unknown_experiment_raises(self):
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            bench_main(["nope"])


class TestQueryResultSurface:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        database.create_table(
            TableSchema(
                "t",
                [Column("a", INTEGER, nullable=False)],
                primary_key=("a",),
            ),
            rows=[(i,) for i in range(10)],
        )
        return database

    def test_len_and_names(self, db):
        result = run_query(db, "select a from t")
        assert len(result) == 10
        assert result.column_names == ("a",)

    def test_simulated_elapsed_combines_io_and_cpu(self, db):
        result = run_query(db, "select a from t", cold_cache=True)
        assert result.simulated_elapsed_ms >= result.simulated_io_ms
        assert result.elapsed_seconds >= 0

    def test_plan_accessible(self, db):
        result = run_query(db, "select a from t order by a")
        assert result.plan.cost.total_ms > 0
        assert "t" in result.plan.explain()


class TestCostSurface:
    def test_str_rendering(self):
        rendered = str(Cost(1.5, 2.5))
        assert "4.00ms" in rendered
        assert "io 1.50" in rendered

    def test_zero_cost_identity(self):
        from repro.cost.model import ZERO_COST

        assert (ZERO_COST + Cost(1.0, 2.0)).total_ms == 3.0
