"""UNION and UNION ALL planning and execution."""

import random

import pytest

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.errors import ParseError, QgmError
from repro.optimizer.plan import OpKind
from repro.parser import parse_query
from repro.sqltypes import INTEGER
from repro.sqltypes.values import sort_key


@pytest.fixture(scope="module")
def db():
    rng = random.Random(61)
    database = Database()
    database.create_table(
        TableSchema(
            "a",
            [Column("x", INTEGER, nullable=False), Column("y", INTEGER)],
            primary_key=("x",),
        ),
        rows=[(i, rng.randint(0, 9)) for i in range(30)],
    )
    database.create_table(
        TableSchema(
            "b",
            [Column("x", INTEGER, nullable=False), Column("z", INTEGER)],
        ),
        rows=[(rng.randint(0, 40), rng.randint(0, 5)) for _ in range(50)],
    )
    database.create_index(Index.on("a_x", "a", ["x"], unique=True, clustered=True))
    return database


def rows_of(db, table):
    return [row for _rid, row in db.store(table).heap.scan()]


class TestUnionAll:
    def test_concatenates(self, db):
        result = run_query(
            db, "select x from a union all select x from b"
        )
        assert len(result.rows) == 80
        assert result.plan.find_all(OpKind.CONCAT)
        assert not result.plan.find_all(OpKind.DISTINCT_HASH)
        assert not result.plan.find_all(OpKind.DISTINCT_SORTED)

    def test_order_by_applies_to_whole_union(self, db):
        result = run_query(
            db,
            "select x, y from a union all select x, z from b order by x",
        )
        values = [row[0] for row in result.rows]
        assert values == sorted(values)

    def test_three_branches(self, db):
        result = run_query(
            db,
            "select x from a union all select x from b "
            "union all select x from a",
        )
        assert len(result.rows) == 110


class TestUnionDistinct:
    def test_deduplicates(self, db):
        result = run_query(db, "select x from a union select x from b")
        expected = {
            (row[0],) for row in rows_of(db, "a")
        } | {(row[0],) for row in rows_of(db, "b")}
        assert sorted(result.rows) == sorted(expected)

    def test_dedup_across_branches_with_same_values(self, db):
        result = run_query(db, "select y from a union select y from a")
        singles = {(row[1],) for row in rows_of(db, "a")}
        assert sorted(result.rows) == sorted(singles)

    def test_order_by_desc(self, db):
        result = run_query(
            db, "select x from a union select x from b order by x desc"
        )
        values = [row[0] for row in result.rows]
        assert values == sorted(values, reverse=True)
        assert len(values) == len(set(values))

    def test_positional_order_by_and_fetch(self, db):
        result = run_query(
            db,
            "select x, y from a union select x, z from b "
            "order by 2, 1 fetch first 5 rows only",
        )
        assert len(result.rows) == 5
        keys = [(sort_key(row[1]), sort_key(row[0])) for row in result.rows]
        assert keys == sorted(keys)

    def test_sorted_dedup_available_without_hash(self, db):
        config = OptimizerConfig(
            enable_hash_join=False, enable_hash_group_by=False
        )
        result = run_query(
            db,
            "select x from a union select x from b order by x",
            config=config,
        )
        assert result.plan.find_all(OpKind.DISTINCT_SORTED)
        # One sort covers both the dedupe and the ORDER BY.
        assert result.plan.sort_count() == 1
        values = [row[0] for row in result.rows]
        assert values == sorted(values)


class TestUnionErrors:
    def test_arity_mismatch(self, db):
        with pytest.raises(QgmError):
            run_query(db, "select x, y from a union select x from b")

    def test_order_by_in_non_final_branch(self, db):
        with pytest.raises(ParseError):
            parse_query(
                "select x from a order by x union select x from b",
                db.catalog,
            )

    def test_mixed_union_kinds_rejected(self, db):
        with pytest.raises(ParseError):
            parse_query(
                "select x from a union select x from b "
                "union all select x from a",
                db.catalog,
            )

    def test_output_names_from_first_branch(self, db):
        result = run_query(
            db, "select x as key, y as val from a union select x, z from b"
        )
        assert result.column_names == ("key", "val")
