"""Host variables (§4.1 "host variable ... qualifies as a constant") and
FETCH FIRST n ROWS ONLY with the Top-N rewrite."""

import random

import pytest

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    execute,
    run_query,
)
from repro.errors import ExpressionError
from repro.optimizer.plan import OpKind
from repro.sqltypes import INTEGER


@pytest.fixture(scope="module")
def db():
    rng = random.Random(77)
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [
                Column("k", INTEGER, nullable=False),
                Column("seg", INTEGER),
                Column("v", INTEGER),
            ],
            primary_key=("k",),
        ),
        rows=[(i, rng.randint(0, 4), rng.randint(0, 999)) for i in range(4000)],
    )
    database.create_index(Index.on("t_k", "t", ["k"], unique=True, clustered=True))
    return database


class TestHostVariables:
    SQL = "select k, seg from t where seg = :s order by seg, k"

    def test_parameter_treated_as_constant_for_ordering(self, db):
        """ORDER BY (seg, k) with seg = :s reduces to (k): index order
        suffices, no sort — planned before :s has a value."""
        result = run_query(db, self.SQL, parameters={"s": 2})
        assert result.plan.sort_count() == 0
        assert all(row[1] == 2 for row in result.rows)
        keys = [row[0] for row in result.rows]
        assert keys == sorted(keys)

    def test_plan_reusable_across_bindings(self, db):
        plan = run_query(db, self.SQL, parameters={"s": 0}).plan
        for value in range(5):
            result = execute(db, plan, parameters={"s": value})
            assert all(row[1] == value for row in result.rows)

    def test_disabled_build_sorts_for_parameter_query(self, db):
        result = run_query(
            db,
            self.SQL,
            config=OptimizerConfig.disabled(),
            parameters={"s": 2},
        )
        assert result.plan.sort_count() == 1

    def test_missing_binding_raises(self, db):
        plan = run_query(db, self.SQL, parameters={"s": 1}).plan
        with pytest.raises(ExpressionError):
            execute(db, plan, parameters={})

    def test_unbound_execution_raises(self, db):
        plan = run_query(db, self.SQL, parameters={"s": 1}).plan
        with pytest.raises(ExpressionError):
            execute(db, plan)  # parameters=None: nothing substituted

    def test_parameter_in_projection(self, db):
        result = run_query(
            db,
            "select k, v + :delta as shifted from t where k < 3 order by k",
            parameters={"delta": 1000},
        )
        raw = run_query(db, "select k, v from t where k < 3 order by k")
        assert [row[1] - 1000 for row in result.rows] == [
            row[1] for row in raw.rows
        ]


class TestFetchFirst:
    def test_limit_without_order(self, db):
        result = run_query(db, "select k from t fetch first 10 rows only")
        assert len(result.rows) == 10

    def test_limit_with_satisfied_order_needs_no_topn(self, db):
        result = run_query(
            db, "select k, v from t order by k fetch first 5 rows only"
        )
        assert len(result.rows) == 5
        assert [row[0] for row in result.rows] == [0, 1, 2, 3, 4]
        assert not result.plan.find_all(OpKind.TOPN)
        assert not result.plan.find_all(OpKind.SORT)

    def test_topn_replaces_full_sort(self, db):
        result = run_query(
            db, "select k, v from t order by v desc fetch first 5 rows only"
        )
        assert result.plan.find_all(OpKind.TOPN)
        assert not result.plan.find_all(OpKind.SORT)
        values = [row[1] for row in result.rows]
        assert len(values) == 5
        assert values == sorted(values, reverse=True)

    def test_topn_matches_full_sort_results(self, db):
        limited = run_query(
            db, "select k, v from t order by v desc, k fetch first 20 rows only"
        )
        full = run_query(db, "select k, v from t order by v desc, k")
        assert limited.rows == full.rows[:20]

    def test_limit_after_group_by(self, db):
        result = run_query(
            db,
            "select seg, count(*) as n from t group by seg "
            "order by n desc fetch first 2 rows only",
        )
        assert len(result.rows) == 2
        assert result.rows[0][1] >= result.rows[1][1]

    def test_limit_larger_than_result(self, db):
        result = run_query(
            db, "select k from t where k < 3 fetch first 100 rows only"
        )
        assert len(result.rows) == 3
