"""Edge cases and failure injection across the whole stack."""

import pytest

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.errors import CatalogError, ParseError
from repro.sqltypes import INTEGER, varchar


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [
                Column("k", INTEGER, nullable=False),
                Column("v", INTEGER),
                Column("s", varchar(8)),
            ],
            primary_key=("k",),
        ),
        rows=[
            (0, None, "a"),
            (1, 5, None),
            (2, None, "b"),
            (3, 5, "a"),
            (4, 7, None),
        ],
    )
    database.create_index(Index.on("t_k", "t", ["k"], unique=True, clustered=True))
    database.create_table(
        TableSchema(
            "empty",
            [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
            primary_key=("k",),
        ),
        rows=[],
    )
    return database


class TestEmptyTables:
    def test_scan_empty(self, db):
        assert run_query(db, "select k from empty").rows == []

    def test_join_with_empty(self, db):
        result = run_query(
            db, "select t.k from t, empty where t.k = empty.k"
        )
        assert result.rows == []

    def test_left_join_empty_inner_pads_all(self, db):
        result = run_query(
            db,
            "select t.k, empty.v from t left join empty on t.k = empty.k "
            "order by t.k",
        )
        assert len(result.rows) == 5
        assert all(row[1] is None for row in result.rows)

    def test_scalar_aggregates_on_empty(self, db):
        result = run_query(
            db,
            "select count(*) as n, sum(v) as total, max(v) as top from empty",
        )
        assert result.rows == [(0, None, None)]

    def test_group_by_on_empty_yields_nothing(self, db):
        result = run_query(
            db, "select v, count(*) as n from empty group by v"
        )
        assert result.rows == []

    def test_order_by_on_empty(self, db):
        assert run_query(db, "select k from empty order by k").rows == []


class TestNulls:
    def test_nulls_sort_high_ascending(self, db):
        result = run_query(db, "select k, v from t order by v, k")
        values = [row[1] for row in result.rows]
        non_null = [value for value in values if value is not None]
        assert values == non_null + [None] * (len(values) - len(non_null))

    def test_nulls_first_descending(self, db):
        result = run_query(db, "select k, v from t order by v desc, k")
        assert result.rows[0][1] is None

    def test_null_group_forms_single_group(self, db):
        result = run_query(
            db, "select v, count(*) as n from t group by v order by v"
        )
        by_value = {row[0]: row[1] for row in result.rows}
        assert by_value[None] == 2

    def test_equality_never_matches_null(self, db):
        result = run_query(db, "select k from t where v = v")
        # v = v is unknown for NULL v: rows 0 and 2 drop.
        assert sorted(row[0] for row in result.rows) == [1, 3, 4]

    def test_is_null_filter(self, db):
        result = run_query(db, "select k from t where s is null order by k")
        assert [row[0] for row in result.rows] == [1, 4]


class TestDegenerateQueries:
    def test_duplicate_output_column(self, db):
        result = run_query(db, "select k, k from t order by k")
        # Engine deduplicates internally but must still return rows.
        assert len(result.rows) == 5

    def test_single_row_table(self, db):
        db.create_table(
            TableSchema(
                "one",
                [Column("k", INTEGER, nullable=False)],
                primary_key=("k",),
            ),
            rows=[(42,)],
        )
        result = run_query(
            db, "select t.k, one.k from t, one where t.k < one.k order by t.k"
        )
        assert len(result.rows) == 5

    def test_predicate_eliminating_everything(self, db):
        result = run_query(db, "select k from t where k = 999")
        assert result.rows == []

    def test_constant_only_predicate(self, db):
        result = run_query(db, "select k from t where 1 = 1 order by k")
        assert len(result.rows) == 5
        result = run_query(db, "select k from t where 1 = 2")
        assert result.rows == []

    def test_self_join(self, db):
        result = run_query(
            db,
            "select t1.k, t2.k from t t1, t t2 where t1.k = t2.k "
            "order by t1.k",
        )
        assert len(result.rows) == 5
        assert all(row[0] == row[1] for row in result.rows)

    def test_order_by_every_column(self, db):
        result = run_query(db, "select k, v, s from t order by s, v, k")
        assert len(result.rows) == 5


class TestErrorPaths:
    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            run_query(db, "select x from nope")

    def test_unknown_column(self, db):
        with pytest.raises(ParseError):
            run_query(db, "select nope from t")

    def test_syntax_error_position(self, db):
        with pytest.raises(ParseError) as info:
            run_query(db, "select k from t where")
        assert info.value.line >= 1

    def test_aggregate_without_group_by_mixed_column(self, db):
        # Mixing a bare column with an aggregate and no GROUP BY is a
        # semantic error we surface during planning/parsing.
        with pytest.raises(Exception):
            run_query(db, "select k, count(*) from t")


class TestExplainStatement:
    def test_explain_returns_plan_rows(self, db):
        result = run_query(db, "explain select k from t order by k")
        assert result.column_names == ("plan",)
        text = "\n".join(row[0] for row in result.rows)
        assert "index scan" in text or "table scan" in text
        assert "rows=" in text and "cost=" in text

    def test_explain_does_not_execute(self, db):
        db.reset_io(cold=True)
        run_query(db, "explain select k, v, s from t")
        # Planning touches the catalog, never the heap pages.
        assert db.buffer_pool.stats.total_misses == 0

    def test_explain_case_insensitive(self, db):
        result = run_query(db, "EXPLAIN select k from t")
        assert result.rows
