"""Joint NDV estimation: correlated column sets stop multiplying.

Partial sort's benefit scales with how many prefix groups the delivered
order carries; estimating group counts as the *product* of per-column
NDVs wildly overestimates on correlated prefixes (nation -> region).
``TableStats.joint_ndv`` counts distinct combinations in the row
sample instead, capped by the independence product and the row count.
"""

from repro.catalog import Column, TableSchema
from repro.catalog.stats import TableStats
from repro.cost.estimate import StatsView
from repro.expr.nodes import ColumnRef
from repro.sqltypes import INTEGER


def _stats(rows):
    return TableStats.collect(("x", "y", "z"), rows)


class TestTableStatsJointNdv:
    def test_correlated_columns_collapse_to_the_determining_column(self):
        # y is a function of x: the pair has exactly ndv(x) combinations,
        # while the independence product claims ndv(x) * ndv(y).
        rows = [(i % 50, (i % 50) // 10, i) for i in range(1000)]
        stats = _stats(rows)
        joint = stats.joint_ndv(["x", "y"])
        product = stats.column("x").ndv * stats.column("y").ndv
        assert joint is not None
        assert abs(joint - 50) <= 5
        assert joint < product / 2

    def test_independent_columns_stay_near_the_product(self):
        rows = [(i % 10, (i // 10) % 10, i) for i in range(1000)]
        stats = _stats(rows)
        joint = stats.joint_ndv(["x", "y"])
        assert joint is not None
        assert 80 <= joint <= 100  # true joint NDV is 100

    def test_estimate_is_capped_by_row_count(self):
        rows = [(i, i * 3, i) for i in range(40)]
        stats = _stats(rows)
        assert stats.joint_ndv(["x", "y"]) <= stats.row_count

    def test_unknown_column_or_missing_sample_returns_none(self):
        stats = _stats([(1, 2, 3)])
        assert stats.joint_ndv(["x", "nope"]) is None
        assert TableStats().joint_ndv(["x"]) is None


class TestStatsViewJointNdv:
    def test_single_table_answers_and_cross_table_declines(self):
        rows = [(i % 20, i % 20, i) for i in range(400)]
        schema = TableSchema(
            "t",
            [
                Column("x", INTEGER, nullable=False),
                Column("y", INTEGER, nullable=False),
                Column("z", INTEGER, nullable=False),
            ],
        )
        schema.stats = _stats(rows)
        view = StatsView({"t": schema, "u": schema})
        joint = view.joint_ndv([ColumnRef("t", "x"), ColumnRef("t", "y")])
        assert joint is not None and abs(joint - 20) <= 3
        # Columns from two qualifiers share no row sample.
        assert (
            view.joint_ndv([ColumnRef("t", "x"), ColumnRef("u", "y")])
            is None
        )


class TestPlannerUsesJointEstimates:
    def test_group_by_cardinality_uses_joint_ndv(self, partitioned_db):
        # okey determines custkey-per-order; grouping on both columns
        # of orders must estimate ~rows-of-orders groups, not the
        # product ndv(okey) * ndv(custkey) (which the row-count cap
        # would also catch) — exercised end-to-end through planning.
        from repro.api import run_query

        result = run_query(
            partitioned_db,
            "select okey, custkey, count(*) as n from orders "
            "group by okey, custkey",
        )
        root = result.plan.root
        assert root.properties.cardinality <= 2100  # ~|orders|, not 10x
