"""Cost model: the asymmetries order optimization exploits."""

from repro.cost import Cost, CostModel


class TestCost:
    def test_addition(self):
        total = Cost(1.0, 2.0) + Cost(3.0, 4.0)
        assert total.io_ms == 4.0 and total.cpu_ms == 6.0

    def test_comparison_on_total(self):
        assert Cost(1.0, 1.0) < Cost(3.0, 0.0)
        assert Cost(1.0, 1.0) <= Cost(2.0, 0.0)

    def test_scaled(self):
        assert Cost(2.0, 4.0).scaled(0.5) == Cost(1.0, 2.0)


class TestAccessCosts:
    def setup_method(self):
        self.model = CostModel()

    def test_table_scan_linear_in_pages(self):
        small = self.model.table_scan(10, 100)
        large = self.model.table_scan(100, 1000)
        assert large.total_ms > small.total_ms

    def test_unclustered_full_fetch_expensive(self):
        # Fetching every row via an unclustered index costs more than
        # scanning the table.
        scan = self.model.table_scan(100, 6400)
        index = self.model.index_scan(100, 6400, 6400, 3, clustered=False)
        assert index.total_ms > scan.total_ms

    def test_clustered_selective_scan_cheap(self):
        scan = self.model.table_scan(100, 6400)
        index = self.model.index_scan(100, 6400, 64, 3, clustered=True)
        assert index.total_ms < scan.total_ms


class TestSortCosts:
    def setup_method(self):
        self.model = CostModel(sort_memory_rows=1000)

    def test_fewer_columns_cheaper(self):
        """The payoff of minimal sort columns (§4.2)."""
        narrow = self.model.sort(10_000, 1, 100)
        wide = self.model.sort(10_000, 3, 100)
        assert narrow.total_ms < wide.total_ms

    def test_spill_beyond_memory(self):
        in_memory = self.model.sort(999, 1, 10)
        spilled = self.model.sort(100_000, 1, 1000)
        assert in_memory.io_ms == 0.0
        assert spilled.io_ms > 0.0

    def test_monotone_in_rows(self):
        assert (
            self.model.sort(1000, 1, 10).total_ms
            < self.model.sort(10_000, 1, 100).total_ms
        )


class TestOrderedNlj:
    """The Section 8.1 asymmetry: ordered clustered probes are cheap."""

    def setup_method(self):
        self.model = CostModel()

    def kwargs(self, **overrides):
        base = dict(
            outer_rows=5000.0,
            matches_per_probe=4.0,
            table_pages=800,
            table_rows=30_000.0,
            tree_height=3,
            output_rows=15_000.0,
        )
        base.update(overrides)
        return base

    def test_ordered_clustered_beats_unordered(self):
        ordered = self.model.index_nlj(
            **self.kwargs(), ordered=True, clustered=True
        )
        unordered = self.model.index_nlj(
            **self.kwargs(), ordered=False, clustered=True
        )
        assert ordered.io_ms * 5 < unordered.io_ms

    def test_ordered_unclustered_between(self):
        clustered = self.model.index_nlj(
            **self.kwargs(), ordered=True, clustered=True
        )
        unclustered = self.model.index_nlj(
            **self.kwargs(), ordered=True, clustered=False
        )
        unordered = self.model.index_nlj(
            **self.kwargs(), ordered=False, clustered=False
        )
        assert clustered.io_ms < unclustered.io_ms <= unordered.io_ms

    def test_cpu_includes_output(self):
        with_output = self.model.index_nlj(
            **self.kwargs(output_rows=50_000.0), ordered=True, clustered=True
        )
        without = self.model.index_nlj(
            **self.kwargs(output_rows=0.0), ordered=True, clustered=True
        )
        assert with_output.cpu_ms > without.cpu_ms


class TestJoinAndGroupCosts:
    def setup_method(self):
        self.model = CostModel(sort_memory_rows=1000)

    def test_merge_join_linear(self):
        small = self.model.merge_join(100, 100, 100)
        large = self.model.merge_join(10_000, 10_000, 10_000)
        assert large.total_ms > small.total_ms

    def test_hash_join_spills(self):
        resident = self.model.hash_join(500, 1000, 1000, 10)
        spilled = self.model.hash_join(50_000, 1000, 1000, 1000)
        assert resident.io_ms == 0.0
        assert spilled.io_ms > 0.0

    def test_sorted_group_by_cheaper_cpu_than_hash(self):
        sorted_cost = self.model.group_by_sorted(10_000, 100)
        hash_cost = self.model.group_by_hash(10_000, 100, 10)
        assert sorted_cost.total_ms < hash_cost.total_ms
