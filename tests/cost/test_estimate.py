"""Selectivity estimation."""

import datetime

from repro.catalog import Column, TableSchema
from repro.cost import SelectivityEstimator, StatsView, join_selectivity
from repro.catalog.stats import ColumnStats, TableStats
from repro.expr import (
    BooleanExpr,
    BooleanOp,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Not,
    col,
    lit,
)
from repro.sqltypes import INTEGER


def make_view():
    table = TableSchema(
        "t",
        [Column("a", INTEGER), Column("b", INTEGER)],
    )
    table.stats = TableStats(
        row_count=1000,
        columns={
            "a": ColumnStats(ndv=100, low=0, high=100),
            "b": ColumnStats(ndv=10, low=0, high=10),
        },
        pages=20,
    )
    return StatsView({"t": table})


A, B = col("t", "a"), col("t", "b")


def EQ(left, right):
    return Comparison(ComparisonOp.EQ, left, right)


class TestSelectivity:
    def setup_method(self):
        self.estimator = SelectivityEstimator(make_view())

    def test_none_is_one(self):
        assert self.estimator.selectivity(None) == 1.0

    def test_equality_uses_ndv(self):
        assert abs(self.estimator.selectivity(EQ(A, lit(5))) - 0.01) < 1e-9
        assert abs(self.estimator.selectivity(EQ(lit(5), B)) - 0.1) < 1e-9

    def test_inequality_complements(self):
        pred = Comparison(ComparisonOp.NE, A, lit(5))
        assert abs(self.estimator.selectivity(pred) - 0.99) < 1e-9

    def test_range_uses_min_max(self):
        pred = Comparison(ComparisonOp.LT, A, lit(50))
        assert abs(self.estimator.selectivity(pred) - 0.5) < 1e-9

    def test_conjunction_multiplies(self):
        pred = BooleanExpr(
            BooleanOp.AND,
            (EQ(A, lit(1)), EQ(B, lit(2))),
        )
        assert abs(self.estimator.selectivity(pred) - 0.001) < 1e-9

    def test_disjunction_union_bound(self):
        pred = BooleanExpr(BooleanOp.OR, (EQ(B, lit(1)), EQ(B, lit(2))))
        expected = 1 - (0.9 * 0.9)
        assert abs(self.estimator.selectivity(pred) - expected) < 1e-9

    def test_not(self):
        pred = Not(EQ(B, lit(1)))
        assert abs(self.estimator.selectivity(pred) - 0.9) < 1e-9

    def test_in_list_scales_with_members(self):
        pred = InList(B, (lit(1), lit(2), lit(3)))
        assert abs(self.estimator.selectivity(pred) - 0.3) < 1e-9

    def test_is_null_default(self):
        assert 0 < self.estimator.selectivity(IsNull(A)) < 1

    def test_column_equality_join_selectivity(self):
        pred = EQ(A, B)
        assert abs(self.estimator.selectivity(pred) - 1 / 100) < 1e-9

    def test_unknown_column_falls_back(self):
        pred = EQ(col("t", "zz"), lit(1))
        sel = self.estimator.selectivity(pred)
        assert 0 < sel <= 1

    def test_never_zero(self):
        pred = BooleanExpr(
            BooleanOp.AND,
            tuple(EQ(A, lit(i)) for i in range(10)),
        )
        assert self.estimator.selectivity(pred) > 0


class TestJoinSelectivity:
    def test_uses_max_ndv(self):
        left = ColumnStats(ndv=100)
        right = ColumnStats(ndv=10)
        assert abs(join_selectivity(left, right) - 0.01) < 1e-9

    def test_missing_stats_default(self):
        assert 0 < join_selectivity(None, None) <= 1
