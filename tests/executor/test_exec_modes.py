"""Differential check: compiled and interpreted engines are one engine.

The compiled executor (batch kernels from ``repro.expr.compile``) and
the interpreted executor (row-at-a-time tree walking) must produce
byte-identical rows in identical order for every plan. This module runs
the seed-7 fuzz corpus — the same corpus digest-pinned in
``tests/verify/test_gen.py`` — through both engines, plus targeted
checks on the metrics/explain plumbing and the probe-key encoder cache.
"""

from __future__ import annotations

import pytest

from repro.api import execute, plan_query
from repro.core.instrument import COUNTERS
from repro.executor import (
    ExecutionContext,
    MODE_COMPILED,
    MODE_INTERPRETED,
)
from repro.optimizer import OptimizerConfig
from repro.verify.gen import QueryGenerator, generate_schema

SEED = 7
N_QUERIES = 30


@pytest.fixture(scope="module")
def fuzz_setup():
    schema = generate_schema(SEED)
    database = schema.build()
    generator = QueryGenerator(schema, SEED)
    queries = [generator.generate().sql() for _ in range(N_QUERIES)]
    return database, queries


def run_mode(database, plan, mode, **kwargs):
    context = ExecutionContext(database, mode=mode, **kwargs)
    return execute(database, plan, context=context), context


class TestSeedCorpusDifferential:
    def test_engines_agree_on_seed7_corpus(self, fuzz_setup):
        database, queries = fuzz_setup
        configs = (OptimizerConfig(), OptimizerConfig.disabled())
        for sql in queries:
            for config in configs:
                plan = plan_query(database, sql, config=config)
                compiled, _ = run_mode(database, plan, MODE_COMPILED)
                interpreted, _ = run_mode(database, plan, MODE_INTERPRETED)
                assert compiled.rows == interpreted.rows, sql
                assert compiled.exec_mode == MODE_COMPILED
                assert interpreted.exec_mode == MODE_INTERPRETED

    def test_batch_size_does_not_change_results(self, fuzz_setup):
        database, queries = fuzz_setup
        for sql in queries[:10]:
            plan = plan_query(database, sql, config=OptimizerConfig())
            baseline, _ = run_mode(database, plan, MODE_COMPILED)
            for batch_size in (1, 3, 7, 4096):
                result, _ = run_mode(
                    database, plan, MODE_COMPILED, batch_size=batch_size
                )
                assert result.rows == baseline.rows, (sql, batch_size)


class TestMetrics:
    def test_explain_analyze_reports_rows(self, fuzz_setup):
        database, queries = fuzz_setup
        plan = plan_query(database, queries[0], config=OptimizerConfig())
        result, context = run_mode(database, plan, MODE_COMPILED)
        assert context.metrics, "execution should populate operator metrics"
        root_metrics = [
            entry
            for entry in context.metrics.values()
            if entry.rows == len(result.rows)
        ]
        assert root_metrics, "some operator must emit exactly the result rows"
        assert "rows=" in result.analyzed
        assert "time=" in result.analyzed
        assert "not executed" not in result.analyzed

    def test_unexecuted_explain_is_marked(self, fuzz_setup):
        database, queries = fuzz_setup
        from repro.executor.build import build_operator

        plan = plan_query(database, queries[0], config=OptimizerConfig())
        context = ExecutionContext(database)
        operator = build_operator(plan.root, database)
        assert "[not executed]" in operator.explain(analyze=context)

    def test_batch_counters_track_batch_size(self, fuzz_setup):
        database, queries = fuzz_setup
        plan = plan_query(database, queries[0], config=OptimizerConfig())
        _, small = run_mode(database, plan, MODE_COMPILED, batch_size=2)
        _, large = run_mode(database, plan, MODE_COMPILED, batch_size=100_000)
        total_small = sum(entry.batches for entry in small.metrics.values())
        total_large = sum(entry.batches for entry in large.metrics.values())
        assert total_small > total_large


class TestProbeEncoderCache:
    def test_adjacent_duplicate_keys_encode_once(self):
        # Regression: the pre-batching join re-ran encode_index_key for
        # every outer row. The encoder is now built once per probe loop
        # and caches the last key, so an ordered outer stream with
        # duplicate join values re-encodes only on value change.
        from repro.executor.joins import make_probe_encoder
        from repro.storage.database import encode_index_key

        for key in ("exec.index_probe.probes", "exec.index_probe.encodes"):
            COUNTERS[key] = 0
        encode = make_probe_encoder([False])
        stream = [(1,), (1,), (1,), (2,), (2,), (3,), (3,), (3,), (3,)]
        keys = [encode(values) for values in stream]
        assert keys == [encode_index_key(v, [False]) for v in stream]
        assert COUNTERS["exec.index_probe.probes"] == len(stream)
        assert COUNTERS["exec.index_probe.encodes"] == 3

    def test_index_probe_counters_move_during_execution(self, simple_db):
        # End to end: an index nested-loop plan routes its probes
        # through the shared encoder (both engines use it).
        from repro.bench.experiments import db2_faithful_config

        sql = "SELECT a.x, b.z FROM a, b WHERE a.x = b.x ORDER BY a.x"
        plan = plan_query(
            database=simple_db, sql=sql, config=db2_faithful_config(True)
        )
        if "index" not in plan.explain():
            pytest.skip("optimizer chose a plan without an index probe")
        for key in ("exec.index_probe.probes", "exec.index_probe.encodes"):
            COUNTERS[key] = 0
        result = execute(simple_db, plan)
        assert result.rows
        probes = COUNTERS["exec.index_probe.probes"]
        encodes = COUNTERS["exec.index_probe.encodes"]
        assert probes > 0
        assert encodes <= probes


class TestModeSelection:
    def test_env_override(self, monkeypatch, fuzz_setup):
        database, queries = fuzz_setup
        monkeypatch.setenv("REPRO_EXEC", "interpreted")
        context = ExecutionContext(database)
        assert context.mode == MODE_INTERPRETED
        assert context.batch_size == 1

    def test_invalid_mode_rejected(self, fuzz_setup):
        database, _ = fuzz_setup
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            ExecutionContext(database, mode="vectorized")

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "turbo")
        from repro.errors import ExecutionError
        from repro.executor.context import default_exec_mode

        with pytest.raises(ExecutionError):
            default_exec_mode()
