"""Interpreter-call budget: compiled plans must not fall back per-row.

A silent regression mode for the compiled engine is an operator quietly
routing expressions through ``repro.expr.evaluate`` again — results
stay correct, throughput regresses. ``exec.interpreted.evals`` counts
every per-row interpreter call inside the executor; this test pins it
to zero for a compiled TPC-D Q3 run, with vacuity guards proving the
counter does move under the interpreted engine and that compilation
actually happened.
"""

from __future__ import annotations

from repro.api import execute, plan_query
from repro.core.instrument import COUNTERS
from repro.expr import compile as expr_compile
from repro.executor import (
    ExecutionContext,
    MODE_COMPILED,
    MODE_INTERPRETED,
)
from repro.optimizer import OptimizerConfig
from repro.tpcd import tpcd_query

EVALS = "exec.interpreted.evals"


def run_q3(database, mode):
    plan = plan_query(database, tpcd_query("q3"), config=OptimizerConfig())
    COUNTERS[EVALS] = 0
    result = execute(
        database, plan, context=ExecutionContext(database, mode=mode)
    )
    return result, COUNTERS[EVALS]


def test_compiled_q3_makes_zero_interpreter_calls(tpcd_db):
    expr_compile.reset_stats()
    compiled_result, compiled_evals = run_q3(tpcd_db, MODE_COMPILED)
    interpreted_result, interpreted_evals = run_q3(tpcd_db, MODE_INTERPRETED)

    # Vacuity guards: the run did real work and the counter is live.
    assert compiled_result.rows == interpreted_result.rows
    assert compiled_result.rows, "Q3 must return rows at test scale"
    assert interpreted_evals > 0, "interpreted engine must hit the counter"
    assert expr_compile.stats().get("compile.calls", 0) > 0

    # The budget: a compiled plan runs entirely on closures.
    assert compiled_evals == 0, (
        f"compiled Q3 made {compiled_evals} per-row interpreter calls; "
        "an operator is falling back to repro.expr.evaluate"
    )
