"""Exchange operators: merge identity/stability, cancellation, faults.

Covers the executor half of the partitioning subsystem:

* MergeExchange must be byte-identical across all three engines and to
  the single-stream (no-partitioning) plan for the same query;
* the k-way merge is stable — equal keys resolve to
  partition-then-arrival order, never by comparing row payloads;
* a consumer cancelled mid-merge (or abandoning the generator) leaves
  no stranded ``repro-exch-*`` worker (the autouse suite guard
  re-checks after every test here);
* a fault injected into an *individual* partition worker's token
  surfaces at the gather point as the typed error, without corrupting
  later fault-free runs.
"""

import pytest

from repro.api import execute, plan_query
from repro.core.ordering import OrderSpec, asc
from repro.errors import QueryCancelled, QueryTimeout
from repro.executor import (
    ExecutionContext,
    MODE_COMPILED,
    MODE_INTERPRETED,
    MODE_VECTOR,
)
from repro.executor.build import build_executor
from repro.executor.context import CancelToken, set_fault_hook
from repro.executor.exchange import MergeExchangeOp
from repro.executor.operators import PhysicalOperator
from repro.expr.nodes import ColumnRef
from repro.expr.schema import RowSchema
from repro.optimizer import OptimizerConfig
from repro.optimizer.plan import OpKind
from repro.storage import Database

ORDERED_SQL = "select okey, odate from orders order by odate"


def _merge_plan(db):
    plan = plan_query(db, ORDERED_SQL, config=OptimizerConfig())
    assert plan.find_all(OpKind.MERGE_EXCHANGE), plan.explain()
    assert plan.sort_count() == 0
    return plan


class TestCrossEngineIdentity:
    def test_merge_exchange_identical_in_all_three_engines(
        self, partitioned_db
    ):
        plan = _merge_plan(partitioned_db)
        rows_by_mode = {
            mode: execute(partitioned_db, plan, mode=mode).rows
            for mode in (MODE_COMPILED, MODE_VECTOR, MODE_INTERPRETED)
        }
        assert rows_by_mode[MODE_COMPILED] == rows_by_mode[MODE_INTERPRETED]
        assert rows_by_mode[MODE_COMPILED] == rows_by_mode[MODE_VECTOR]

    def test_merge_matches_single_stream_sort_byte_for_byte(
        self, partitioned_db
    ):
        merged = execute(partitioned_db, _merge_plan(partitioned_db)).rows
        off = OptimizerConfig()
        off.enable_partitioning = False
        baseline_plan = plan_query(partitioned_db, ORDERED_SQL, config=off)
        assert baseline_plan.sort_count() >= 1
        assert merged == execute(partitioned_db, baseline_plan).rows

    def test_batch_size_does_not_change_merge_output(self, partitioned_db):
        plan = _merge_plan(partitioned_db)
        baseline = execute(partitioned_db, plan).rows
        for batch_size in (1, 7, 4096):
            context = ExecutionContext(
                partitioned_db, batch_size=batch_size
            )
            assert execute(
                partitioned_db, plan, context=context
            ).rows == baseline


class _StaticOp(PhysicalOperator):
    """Fixed row source for direct operator-level tests."""

    def __init__(self, schema, rows):
        super().__init__(schema)
        self.rows = list(rows)

    def _batches(self, context):
        size = context.batch_size
        for start in range(0, len(self.rows), size):
            yield self.rows[start : start + size]

    def label(self):
        return "static"


class TestMergeStability:
    SCHEMA = RowSchema([ColumnRef("t", "k"), ColumnRef("t", "src")])
    ORDER = OrderSpec([asc(ColumnRef("t", "k"))])

    def _merge(self, *streams):
        op = MergeExchangeOp(
            [_StaticOp(self.SCHEMA, rows) for rows in streams],
            self.SCHEMA,
            self.ORDER,
        )
        out = []
        for batch in op.batches(ExecutionContext(Database())):
            out.extend(batch)
        return out

    def test_equal_keys_keep_partition_then_arrival_order(self):
        merged = self._merge(
            [(1, "p0-a"), (1, "p0-b")],
            [(1, "p1-a"), (1, "p1-b")],
            [(1, "p2-a")],
        )
        assert merged == [
            (1, "p0-a"),
            (1, "p0-b"),
            (1, "p1-a"),
            (1, "p1-b"),
            (1, "p2-a"),
        ]

    def test_distinct_keys_interleave_in_key_order(self):
        merged = self._merge(
            [(1, "a"), (4, "d")],
            [(2, "b"), (3, "c"), (5, "e")],
        )
        assert [row[0] for row in merged] == [1, 2, 3, 4, 5]

    def test_row_payloads_are_never_compared(self):
        # Ties everywhere and uncomparable payloads: only the decorated
        # (key, partition, sequence) prefix may decide.
        class Opaque:
            __lt__ = None

        left, right = Opaque(), Opaque()
        merged = self._merge([(7, left)], [(7, right)])
        assert merged[0][1] is left and merged[1][1] is right


class TestCancellation:
    def test_mid_merge_cancel_raises_typed_and_joins_workers(
        self, partitioned_db
    ):
        plan = _merge_plan(partitioned_db)
        operator = build_executor(plan, partitioned_db)
        token = CancelToken()
        context = ExecutionContext(
            partitioned_db, batch_size=64, cancel_token=token
        )
        stream = operator.batches(context)
        assert next(stream)  # the merge is live
        token.cancel("test cancel")
        with pytest.raises(QueryCancelled):
            for _ in stream:
                pass
        # The suite-wide autouse fixture re-checks for leaked
        # repro-exch-* threads after this test returns.

    def test_abandoned_generator_joins_workers(self, partitioned_db):
        plan = _merge_plan(partitioned_db)
        operator = build_executor(plan, partitioned_db)
        context = ExecutionContext(partitioned_db, batch_size=64)
        stream = operator.batches(context)
        assert next(stream)
        stream.close()  # GeneratorExit must tear the workers down


class TestWorkerFaults:
    GATHER_SQL = "select okey, qty from lineitem where qty < 40"

    def _gather_plan(self, db):
        plan = plan_query(db, self.GATHER_SQL, config=OptimizerConfig())
        assert plan.find_all(OpKind.GATHER_EXCHANGE), plan.explain()
        return plan

    @pytest.mark.parametrize(
        "kind,error",
        [("cancel", QueryCancelled), ("timeout", QueryTimeout)],
    )
    def test_single_worker_fault_surfaces_at_gather(
        self, partitioned_db, kind, error
    ):
        plan = self._gather_plan(partitioned_db)
        baseline = execute(partitioned_db, plan).rows

        parent = CancelToken()
        state = {"victim": None}

        def hook(token):
            # Trip exactly one partition worker's token — never the
            # consumer's — at its first checkpoint.
            if token is parent or state["victim"] is not None:
                return
            state["victim"] = token
            if kind == "cancel":
                token.cancel("injected worker fault")
            else:
                token.expire()

        previous = set_fault_hook(hook)
        try:
            context = ExecutionContext(
                partitioned_db, batch_size=32, cancel_token=parent
            )
            with pytest.raises(error):
                execute(partitioned_db, plan, context=context)
        finally:
            set_fault_hook(previous)
        assert state["victim"] is not None, "no worker checkpoint reached"
        assert not parent.cancelled  # the fault stayed in the worker
        # The fault interrupted; it must not corrupt later runs.
        assert execute(partitioned_db, plan).rows == baseline

    def test_worker_metrics_are_absorbed_at_gather(self, partitioned_db):
        plan = self._gather_plan(partitioned_db)
        context = ExecutionContext(partitioned_db)
        result = execute(partitioned_db, plan, context=context)
        scans = [
            entry
            for entry in context.metrics.values()
            if entry.label.startswith("partition scan")
        ]
        assert len(scans) == 4  # one slice per partition worker
        total_rows = partitioned_db.store("lineitem").heap.row_count
        assert sum(entry.rows for entry in scans) == total_rows
        assert len(result.rows) < total_rows  # the filter did run
