"""LimitOp, TopNSortOp, and ConcatOp at the operator level."""

import random

import pytest

from repro import Column, Database, TableSchema
from repro.core import OrderSpec
from repro.core.ordering import desc
from repro.errors import ExecutionError
from repro.executor import ExecutionContext, SortOp, TableScanOp
from repro.executor.operators import ConcatOp, LimitOp, TopNSortOp
from repro.expr import RowSchema, col
from repro.sqltypes import INTEGER

TA, TB = col("t", "a"), col("t", "b")
SCHEMA = RowSchema([TA, TB])


@pytest.fixture
def db():
    rng = random.Random(3)
    database = Database()
    database.create_table(
        TableSchema("t", [Column("a", INTEGER), Column("b", INTEGER)]),
        rows=[(i, rng.randint(0, 999)) for i in range(500)],
    )
    database.create_table(
        TableSchema("u", [Column("a", INTEGER), Column("b", INTEGER)]),
        rows=[(i + 1000, rng.randint(0, 999)) for i in range(200)],
    )
    return database


def run(op, db, **context_args):
    return op.execute(ExecutionContext(db, **context_args))


def scan(db, table="t"):
    return TableScanOp(table, "t", SCHEMA)


class TestLimit:
    def test_truncates(self, db):
        rows = run(LimitOp(scan(db), 10), db)
        assert len(rows) == 10

    def test_limit_larger_than_input(self, db):
        rows = run(LimitOp(scan(db), 10_000), db)
        assert len(rows) == 500

    def test_stops_pulling_from_child(self, db):
        # The limit short-circuits: only the first page(s) are read.
        db.reset_io(cold=True)
        run(LimitOp(scan(db), 1), db)
        assert db.buffer_pool.stats.total_accesses <= 2

    def test_invalid_count(self, db):
        with pytest.raises(ExecutionError):
            LimitOp(scan(db), 0)


class TestTopN:
    def test_matches_sort_then_limit(self, db):
        order = OrderSpec((desc(TB),))
        top = run(TopNSortOp(scan(db), order, 7), db)
        full = run(SortOp(scan(db), order), db)
        assert [row[1] for row in top] == [row[1] for row in full[:7]]

    def test_count_larger_than_input(self, db):
        top = run(TopNSortOp(scan(db), OrderSpec.of(TA), 10_000), db)
        assert len(top) == 500
        values = [row[0] for row in top]
        assert values == sorted(values)

    def test_stable_for_ties(self, db):
        db.store("t").load([(i, 1) for i in range(20)])
        top = run(TopNSortOp(scan(db), OrderSpec.of(TB), 5), db)
        # All ties on b: the first five input rows win, in input order.
        assert [row[0] for row in top] == [0, 1, 2, 3, 4]

    def test_guards(self, db):
        with pytest.raises(ExecutionError):
            TopNSortOp(scan(db), OrderSpec(), 5)
        with pytest.raises(ExecutionError):
            TopNSortOp(scan(db), OrderSpec.of(TA), 0)


class TestConcat:
    def test_appends_in_order(self, db):
        out_schema = RowSchema([col("", "a"), col("", "b")])
        op = ConcatOp([scan(db, "t"), scan(db, "u")], out_schema)
        rows = run(op, db)
        assert len(rows) == 700
        assert rows[0][0] == 0
        assert rows[500][0] == 1000

    def test_arity_guards(self, db):
        out_schema = RowSchema([col("", "a")])
        with pytest.raises(ExecutionError):
            ConcatOp([scan(db)], out_schema)  # one child
        with pytest.raises(ExecutionError):
            ConcatOp([scan(db), scan(db, "u")], out_schema)  # arity


class TestExternalSort:
    def test_spilled_sort_matches_in_memory(self, db):
        order = OrderSpec.of(TB, TA)
        in_memory = run(SortOp(scan(db), order), db)
        spilled = run(SortOp(scan(db), order), db, sort_memory_rows=37)
        assert in_memory == spilled

    def test_run_accounting(self, db):
        context = ExecutionContext(db, sort_memory_rows=100)
        list(SortOp(scan(db), OrderSpec.of(TB)).rows(context))
        assert context.spill_pages > 0
        assert context.rows_sorted == 500
