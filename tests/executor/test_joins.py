"""Join operators, cross-validated against a brute-force join."""

import random

import pytest

from repro import Column, Database, Index, TableSchema
from repro.core import OrderSpec
from repro.errors import ExecutionError
from repro.executor import (
    ExecutionContext,
    HashJoinOp,
    MergeJoinOp,
    NestedLoopIndexJoinOp,
    NestedLoopJoinOp,
    SortOp,
    TableScanOp,
)
from repro.expr import Comparison, ComparisonOp, RowSchema, col, lit
from repro.sqltypes import INTEGER

RA, RB = col("r", "a"), col("r", "b")
SA, SB = col("s", "a"), col("s", "b")
R_SCHEMA = RowSchema([RA, RB])
S_SCHEMA = RowSchema([SA, SB])


@pytest.fixture
def db():
    rng = random.Random(11)
    database = Database()
    database.create_table(
        TableSchema(
            "r",
            [Column("a", INTEGER), Column("b", INTEGER)],
        ),
        rows=[(rng.randint(0, 20), rng.randint(0, 5)) for _ in range(60)]
        + [(None, 1)],
    )
    database.create_table(
        TableSchema(
            "s",
            [Column("a", INTEGER), Column("b", INTEGER)],
        ),
        rows=[(rng.randint(0, 20), rng.randint(0, 5)) for _ in range(40)]
        + [(None, 2)],
    )
    database.create_index(Index.on("s_a", "s", ["a"], clustered=True))
    return database


def expected_join(db):
    r_rows = [row for _rid, row in db.store("r").heap.scan()]
    s_rows = [row for _rid, row in db.store("s").heap.scan()]
    return sorted(
        left + right
        for left in r_rows
        for right in s_rows
        if left[0] is not None and left[0] == right[0]
    )


def scan_r():
    return TableScanOp("r", "r", R_SCHEMA)


def scan_s():
    return TableScanOp("s", "s", S_SCHEMA)


def run(op, db):
    return op.execute(ExecutionContext(db))


JOIN_PRED = Comparison(ComparisonOp.EQ, RA, SA)


class TestNestedLoopJoin:
    def test_matches_brute_force(self, db):
        rows = run(NestedLoopJoinOp(scan_r(), scan_s(), JOIN_PRED), db)
        assert sorted(rows) == expected_join(db)

    def test_cross_product_without_predicate(self, db):
        rows = run(NestedLoopJoinOp(scan_r(), scan_s(), None), db)
        assert len(rows) == 61 * 41


class TestIndexNlj:
    def make(self, db, ordered=False, residual=None):
        return NestedLoopIndexJoinOp(
            outer=scan_r(),
            table_name="s",
            index_name="s_a",
            alias="s",
            inner_schema=S_SCHEMA,
            probe_columns=[RA],
            residual=residual,
            ordered=ordered,
        )

    def test_matches_brute_force(self, db):
        rows = run(self.make(db), db)
        assert sorted(rows) == expected_join(db)

    def test_null_probe_skipped(self, db):
        rows = run(self.make(db), db)
        assert all(row[0] is not None for row in rows)

    def test_residual_applied(self, db):
        residual = Comparison(ComparisonOp.EQ, SB, lit(3))
        rows = run(self.make(db, residual=residual), db)
        assert all(row[3] == 3 for row in rows)
        assert sorted(rows) == sorted(
            row for row in expected_join(db) if row[3] == 3
        )

    def test_ordered_probes_mostly_sequential(self, db):
        ordered_op = NestedLoopIndexJoinOp(
            outer=SortOp(scan_r(), OrderSpec.of(RA)),
            table_name="s",
            index_name="s_a",
            alias="s",
            inner_schema=S_SCHEMA,
            probe_columns=[RA],
            ordered=True,
        )
        db.reset_io(cold=True)
        run(ordered_op, db)
        stats = db.buffer_pool.stats
        assert stats.random_misses <= stats.sequential_misses + stats.hits


class TestMergeJoin:
    def sorted_inputs(self):
        return (
            SortOp(scan_r(), OrderSpec.of(RA)),
            SortOp(scan_s(), OrderSpec.of(SA)),
        )

    def test_matches_brute_force(self, db):
        outer, inner = self.sorted_inputs()
        rows = run(MergeJoinOp(outer, inner, [RA], [SA]), db)
        assert sorted(rows) == expected_join(db)

    def test_duplicates_on_both_sides(self, db):
        # Force heavy duplication.
        database = Database()
        database.create_table(
            TableSchema("r", [Column("a", INTEGER), Column("b", INTEGER)]),
            rows=[(1, i) for i in range(3)] + [(2, 9)],
        )
        database.create_table(
            TableSchema("s", [Column("a", INTEGER), Column("b", INTEGER)]),
            rows=[(1, i) for i in range(4)],
        )
        outer = SortOp(TableScanOp("r", "r", R_SCHEMA), OrderSpec.of(RA))
        inner = SortOp(TableScanOp("s", "s", S_SCHEMA), OrderSpec.of(SA))
        rows = run(MergeJoinOp(outer, inner, [RA], [SA]), database)
        assert len(rows) == 12  # 3 x 4

    def test_residual(self, db):
        outer, inner = self.sorted_inputs()
        residual = Comparison(ComparisonOp.EQ, RB, SB)
        rows = run(MergeJoinOp(outer, inner, [RA], [SA], residual), db)
        assert all(row[1] == row[3] for row in rows)

    def test_key_arity_guard(self, db):
        outer, inner = self.sorted_inputs()
        with pytest.raises(ExecutionError):
            MergeJoinOp(outer, inner, [RA], [])


class TestHashJoin:
    def test_matches_brute_force(self, db):
        rows = run(HashJoinOp(scan_r(), scan_s(), [RA], [SA]), db)
        assert sorted(rows) == expected_join(db)

    def test_preserves_probe_order(self, db):
        outer = SortOp(scan_r(), OrderSpec.of(RA))
        rows = run(HashJoinOp(outer, scan_s(), [RA], [SA]), db)
        values = [row[0] for row in rows]
        assert values == sorted(values)

    def test_nulls_never_match(self, db):
        rows = run(HashJoinOp(scan_r(), scan_s(), [RA], [SA]), db)
        assert all(row[0] is not None for row in rows)

    def test_key_arity_guard(self, db):
        with pytest.raises(ExecutionError):
            HashJoinOp(scan_r(), scan_s(), [], [])
