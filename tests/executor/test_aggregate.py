"""Aggregation and DISTINCT operators."""

import decimal

import pytest

from repro import Column, Database, TableSchema
from repro.core import OrderSpec
from repro.executor import (
    ExecutionContext,
    HashDistinctOp,
    HashGroupByOp,
    SortedDistinctOp,
    SortedGroupByOp,
    SortOp,
    TableScanOp,
)
from repro.expr import Aggregate, AggregateKind, RowSchema, col
from repro.sqltypes import INTEGER

TG, TV = col("t", "g"), col("t", "v")
SCHEMA = RowSchema([TG, TV])


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema("t", [Column("g", INTEGER), Column("v", INTEGER)]),
        rows=[
            (0, 1), (0, 2), (1, 10), (1, None), (2, 5),
            (0, 3), (1, 10), (None, 4),
        ],
    )
    return database


def scan():
    return TableScanOp("t", "t", SCHEMA)


def sorted_scan():
    return SortOp(scan(), OrderSpec.of(TG))


def run(op, db):
    return op.execute(ExecutionContext(db))


AGGS = [
    ("total", Aggregate(AggregateKind.SUM, TV)),
    ("n", Aggregate(AggregateKind.COUNT, None)),
    ("n_v", Aggregate(AggregateKind.COUNT, TV)),
    ("lo", Aggregate(AggregateKind.MIN, TV)),
    ("hi", Aggregate(AggregateKind.MAX, TV)),
    ("mean", Aggregate(AggregateKind.AVG, TV)),
]

EXPECTED = {
    0: (6, 3, 3, 1, 3, 2),
    1: (20, 3, 2, 10, 10, 10),
    2: (5, 1, 1, 5, 5, 5),
    None: (4, 1, 1, 4, 4, 4),
}


def check_groups(rows):
    assert len(rows) == 4
    for row in rows:
        group = row[0]
        assert row[1:] == EXPECTED[group], f"group {group}"


class TestSortedGroupBy:
    def test_all_aggregate_kinds(self, db):
        rows = run(SortedGroupByOp(sorted_scan(), [TG], AGGS), db)
        check_groups(rows)

    def test_null_group_is_its_own_group(self, db):
        rows = run(SortedGroupByOp(sorted_scan(), [TG], AGGS), db)
        assert any(row[0] is None for row in rows)

    def test_output_preserves_input_group_order(self, db):
        rows = run(
            SortedGroupByOp(
                sorted_scan(), [TG], [("n", Aggregate(AggregateKind.COUNT, None))]
            ),
            db,
        )
        groups = [row[0] for row in rows]
        assert groups == [0, 1, 2, None]  # NULLs high

    def test_empty_input(self, db):
        db.store("t").load([])
        rows = run(SortedGroupByOp(sorted_scan(), [TG], AGGS), db)
        assert rows == []


class TestHashGroupBy:
    def test_matches_sorted_results(self, db):
        rows = run(HashGroupByOp(scan(), [TG], AGGS), db)
        check_groups(rows)

    def test_scalar_aggregate_on_empty_input(self, db):
        db.store("t").load([])
        rows = run(
            HashGroupByOp(
                scan(), [], [("n", Aggregate(AggregateKind.COUNT, None))]
            ),
            db,
        )
        assert rows == [(0,)]

    def test_distinct_aggregate(self, db):
        aggs = [("d", Aggregate(AggregateKind.SUM, TV, distinct=True))]
        rows = run(HashGroupByOp(scan(), [TG], aggs), db)
        by_group = {row[0]: row[1] for row in rows}
        assert by_group[1] == 10  # 10 counted once

    def test_avg_of_all_nulls_is_null(self, db):
        db.store("t").load([(1, None), (1, None)])
        aggs = [("mean", Aggregate(AggregateKind.AVG, TV))]
        rows = run(HashGroupByOp(scan(), [TG], aggs), db)
        assert rows == [(1, None)]


class TestDistinct:
    def test_sorted_distinct(self, db):
        db.store("t").load([(1, 1), (1, 1), (2, 2), (2, 2), (None, None)])
        op = SortedDistinctOp(SortOp(scan(), OrderSpec.of(TG, TV)))
        rows = run(op, db)
        assert len(rows) == 3

    def test_hash_distinct(self, db):
        db.store("t").load([(1, 1), (1, 1), (2, 2)])
        rows = run(HashDistinctOp(scan()), db)
        assert sorted(rows) == [(1, 1), (2, 2)]

    def test_hash_distinct_with_nulls(self, db):
        db.store("t").load([(None, 1), (None, 1), (None, 2)])
        rows = run(HashDistinctOp(scan()), db)
        assert len(rows) == 2
