"""The vector engine is the compiled engine's third gear — prove it.

Every test here runs the same plan through ``vector`` and at least one
reference engine (``compiled`` row kernels and/or ``interpreted``) and
asserts byte-identical rows: the seed-7 fuzz corpus, NULL-heavy
three-valued predicates, parameterized plans re-executed under fresh
bindings, and cancellation tripping *inside* a vector batch loop. The
metrics tests pin the vector-specific observability (``sel=`` and
``mat=`` in explain(analyze)).
"""

from __future__ import annotations

import pytest

from repro import Column, Database, TableSchema
from repro.api import execute, plan_query
from repro.errors import ExecutionError, QueryCancelled, QueryTimeout
from repro.executor import (
    ExecutionContext,
    MODE_COMPILED,
    MODE_INTERPRETED,
    MODE_VECTOR,
    resolve_batch_size,
)
from repro.optimizer import OptimizerConfig
from repro.sqltypes import INTEGER, varchar
from repro.verify.faults import inject_token_faults
from repro.verify.gen import QueryGenerator, generate_schema

SEED = 7
N_QUERIES = 30

ALL_MODES = (MODE_COMPILED, MODE_INTERPRETED, MODE_VECTOR)


@pytest.fixture(scope="module")
def fuzz_setup():
    schema = generate_schema(SEED)
    database = schema.build()
    generator = QueryGenerator(schema, SEED)
    queries = [generator.generate().sql() for _ in range(N_QUERIES)]
    return database, queries


@pytest.fixture(scope="module")
def nullable_db() -> Database:
    """A small table where most non-key columns are NULL-riddled."""
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("k", INTEGER, nullable=False),
                Column("a", INTEGER),
                Column("b", INTEGER),
                Column("s", varchar(8)),
            ],
            primary_key=("k",),
        ),
        rows=[
            (
                i,
                None if i % 3 == 0 else i % 10,
                None if i % 5 == 0 else (i * 7) % 10,
                None if i % 4 == 0 else f"v{i % 6}",
            )
            for i in range(400)
        ],
    )
    return db


def run_mode(database, plan, mode, **kwargs):
    context = ExecutionContext(database, mode=mode, **kwargs)
    return execute(database, plan, context=context), context


def assert_three_way(database, sql, config=None, parameters=None):
    plan = plan_query(database, sql, config=config or OptimizerConfig())
    results = {}
    for mode in ALL_MODES:
        context = ExecutionContext(database, mode=mode)
        results[mode] = execute(
            database, plan, context=context, parameters=parameters
        ).rows
    assert results[MODE_VECTOR] == results[MODE_COMPILED], sql
    assert results[MODE_VECTOR] == results[MODE_INTERPRETED], sql
    return results[MODE_VECTOR]


class TestThreeWayDifferential:
    def test_seed7_corpus_three_way(self, fuzz_setup):
        database, queries = fuzz_setup
        configs = (OptimizerConfig(), OptimizerConfig.disabled())
        for sql in queries:
            for config in configs:
                assert_three_way(database, sql, config=config)

    def test_vector_batch_size_does_not_change_results(self, fuzz_setup):
        database, queries = fuzz_setup
        for sql in queries[:10]:
            plan = plan_query(database, sql, config=OptimizerConfig())
            baseline, _ = run_mode(database, plan, MODE_COMPILED)
            for batch_size in (1, 3, 7, 4096):
                result, _ = run_mode(
                    database, plan, MODE_VECTOR, batch_size=batch_size
                )
                assert result.rows == baseline.rows, (sql, batch_size)


class TestNullHeavyPredicates:
    """Targeted 3VL shapes over NULL-riddled columns.

    The fuzz corpus hits these statistically; this class pins the exact
    shapes where selection-vector logic could diverge from row
    semantics (unknown vs False in AND/OR/NOT, NULL in IN lists).
    """

    QUERIES = (
        "SELECT k FROM t WHERE a > 3 OR b < 5 ORDER BY k",
        "SELECT k FROM t WHERE a > 3 AND b < 5 ORDER BY k",
        "SELECT k FROM t WHERE NOT (a > 3) ORDER BY k",
        "SELECT k FROM t WHERE NOT (a > 3 OR b < 5) ORDER BY k",
        "SELECT k FROM t WHERE a IN (1, 2, 9) ORDER BY k",
        "SELECT k FROM t WHERE NOT (a IN (1, 2, 9)) ORDER BY k",
        "SELECT k FROM t WHERE a IS NULL AND b IS NOT NULL ORDER BY k",
        "SELECT k FROM t WHERE a IS NULL OR s = 'v1' ORDER BY k",
        "SELECT k FROM t WHERE (a > 3 AND s = 'v2') OR b = 7 ORDER BY k",
        "SELECT k, a FROM t WHERE a = b OR a > b ORDER BY k",
        "SELECT k FROM t WHERE a + b > 8 ORDER BY k",
        "SELECT s, COUNT(*), SUM(a) FROM t GROUP BY s ORDER BY s",
    )

    def test_null_heavy_three_way(self, nullable_db):
        for sql in self.QUERIES:
            rows = assert_three_way(nullable_db, sql)
            # Sanity: the fixture must actually exercise the predicate
            # (all-empty results would vacuously pass).
            if "COUNT" not in sql:
                assert 0 < len(rows) < 400, sql

    def test_disabled_config_agrees_too(self, nullable_db):
        for sql in self.QUERIES[:6]:
            assert_three_way(
                nullable_db, sql, config=OptimizerConfig.disabled()
            )


class TestParameterBindings:
    def test_parameterized_plan_three_way(self, nullable_db):
        sql = "SELECT k FROM t WHERE a > :lo AND b < :hi ORDER BY k"
        assert_three_way(
            nullable_db, sql, parameters={"lo": 2, "hi": 8}
        )

    def test_rebinding_changes_rows_not_kernels(self, nullable_db):
        from repro.expr.vector import reset_vector_stats, vector_stats

        sql = "SELECT k FROM t WHERE a > :lo ORDER BY k"
        plan = plan_query(nullable_db, sql, config=OptimizerConfig())

        def run(lo):
            context = ExecutionContext(nullable_db, mode=MODE_VECTOR)
            return execute(
                nullable_db, plan, context=context, parameters={"lo": lo}
            ).rows

        first = run(1)
        reset_vector_stats()
        second = run(8)
        stats = vector_stats()
        # The second execution reuses the memoized kernel: every filter
        # compilation it requests is a memo hit.
        assert stats.get("vector.filter_calls", 0) > 0
        assert stats.get("vector.filter_memo_hits") == stats.get(
            "vector.filter_calls"
        )
        assert first != second  # the binding, not the kernel, changed
        for lo, rows in ((1, first), (8, second)):
            reference = execute(
                nullable_db,
                plan,
                context=ExecutionContext(nullable_db, mode=MODE_COMPILED),
                parameters={"lo": lo},
            ).rows
            assert rows == reference

    def test_unbound_parameter_raises_in_vector_mode(self, nullable_db):
        from repro.errors import ExpressionError

        sql = "SELECT k FROM t WHERE a > :lo ORDER BY k"
        plan = plan_query(nullable_db, sql, config=OptimizerConfig())
        with pytest.raises(ExpressionError):
            run_mode(nullable_db, plan, MODE_VECTOR)


class TestCancellation:
    def test_fault_mid_vector_batch(self, fuzz_setup):
        database, queries = fuzz_setup
        plan = plan_query(database, queries[0], config=OptimizerConfig())
        # Token checkpoints fire at every batches() pull; with a small
        # batch size the second checkpoint lands mid-stream, so the
        # fault surfaces from inside the vector batch loop.
        with inject_token_faults(2, kind="timeout"):
            from repro.executor.context import CancelToken

            context = ExecutionContext(
                database,
                mode=MODE_VECTOR,
                batch_size=2,
                cancel_token=CancelToken(),
            )
            with pytest.raises(QueryTimeout):
                execute(database, plan, context=context)

    def test_explicit_cancel_mid_vector_batch(self, fuzz_setup):
        database, queries = fuzz_setup
        plan = plan_query(database, queries[0], config=OptimizerConfig())
        with inject_token_faults(2, kind="cancel"):
            from repro.executor.context import CancelToken

            context = ExecutionContext(
                database,
                mode=MODE_VECTOR,
                batch_size=2,
                cancel_token=CancelToken(),
            )
            with pytest.raises(QueryCancelled):
                execute(database, plan, context=context)

    def test_untripped_token_is_harmless(self, nullable_db):
        from repro.executor.context import CancelToken

        sql = "SELECT k FROM t WHERE a > 3 ORDER BY k"
        plan = plan_query(nullable_db, sql, config=OptimizerConfig())
        context = ExecutionContext(
            nullable_db, mode=MODE_VECTOR, cancel_token=CancelToken()
        )
        result = execute(nullable_db, plan, context=context)
        reference, _ = run_mode(nullable_db, plan, MODE_COMPILED)
        assert result.rows == reference.rows


class TestVectorMetrics:
    def test_selectivity_and_materializations_render(self, nullable_db):
        sql = (
            "SELECT k, a FROM t WHERE a > 3 AND b < 9 ORDER BY k"
        )
        plan = plan_query(nullable_db, sql, config=OptimizerConfig())
        result, context = run_mode(nullable_db, plan, MODE_VECTOR)
        assert result.rows
        entries = list(context.metrics.values())
        filters = [e for e in entries if e.rows_in > 0]
        assert filters, "a filtering operator must report rows_in"
        for entry in filters:
            assert 0.0 <= entry.rows / entry.rows_in <= 1.0
        assert any(e.materializations > 0 for e in entries), (
            "some operator must materialize vector blocks back to rows"
        )
        assert "sel=" in result.analyzed
        assert "mat=" in result.analyzed

    def test_row_engine_reports_no_materializations(self, nullable_db):
        sql = "SELECT k FROM t WHERE a > 3 ORDER BY k"
        plan = plan_query(nullable_db, sql, config=OptimizerConfig())
        result, context = run_mode(nullable_db, plan, MODE_COMPILED)
        assert all(
            e.materializations == 0 for e in context.metrics.values()
        )
        assert "mat=" not in result.analyzed


class TestBatchSizeResolution:
    def test_vector_mode_resolves_default(self):
        from repro.executor import DEFAULT_BATCH_SIZE

        assert resolve_batch_size(MODE_VECTOR, 0) == DEFAULT_BATCH_SIZE
        assert resolve_batch_size(MODE_INTERPRETED, 0) == 1

    def test_explicit_values_are_identity(self):
        for size in (1, 7, 4096):
            assert resolve_batch_size(MODE_VECTOR, size) == size
            # Idempotent: re-resolving a resolved value changes nothing.
            assert resolve_batch_size(
                MODE_VECTOR, resolve_batch_size(MODE_VECTOR, size)
            ) == size

    def test_bool_rejected(self):
        with pytest.raises(ExecutionError):
            resolve_batch_size(MODE_VECTOR, True)
        with pytest.raises(ExecutionError):
            resolve_batch_size(MODE_VECTOR, False)

    def test_env_var_selects_vector(self, monkeypatch, nullable_db):
        monkeypatch.setenv("REPRO_EXEC", "vector")
        context = ExecutionContext(nullable_db)
        assert context.mode == MODE_VECTOR
        assert context.vectorized
        assert context.compiled
