"""Leaf/unary physical operators."""

import pytest

from repro import Column, Database, Index, TableSchema
from repro.core import OrderSpec
from repro.core.ordering import desc
from repro.errors import ExecutionError, QueryCancelled
from repro.executor import (
    MODE_COMPILED,
    MODE_INTERPRETED,
    MODE_VECTOR,
    ExecutionContext,
    FilterOp,
    IndexScanOp,
    PartialSortOp,
    ProjectOp,
    SortOp,
    TableScanOp,
)
from repro.executor.context import CancelToken
from repro.executor.operators import MaterializeOp
from repro.expr import Arithmetic, Comparison, ComparisonOp, RowSchema, col, lit
from repro.expr.nodes import ArithmeticOp
from repro.sqltypes import INTEGER

TA, TB = col("t", "a"), col("t", "b")
SCHEMA = RowSchema([TA, TB])

ALL_MODES = (MODE_COMPILED, MODE_INTERPRETED, MODE_VECTOR)


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [Column("a", INTEGER, nullable=False), Column("b", INTEGER)],
            primary_key=("a",),
        ),
        rows=[(i, (i * 7) % 10) for i in range(50)],
    )
    database.create_index(Index.on("t_b", "t", ["b"]))
    return database


def run(op, db):
    return op.execute(ExecutionContext(db))


class TestTableScan:
    def test_scans_all_rows(self, db):
        rows = run(TableScanOp("t", "t", SCHEMA), db)
        assert len(rows) == 50

    def test_charges_io(self, db):
        db.reset_io(cold=True)
        run(TableScanOp("t", "t", SCHEMA), db)
        assert db.buffer_pool.stats.total_misses > 0


class TestIndexScan:
    def test_full_scan_ordered(self, db):
        op = IndexScanOp("t", "t_b", "t", SCHEMA)
        rows = run(op, db)
        values = [row[1] for row in rows]
        assert values == sorted(values)
        assert len(rows) == 50

    def test_bounded_scan(self, db):
        op = IndexScanOp("t", "t_b", "t", SCHEMA, low=(3,), high=(5,))
        rows = run(op, db)
        assert rows and all(3 <= row[1] <= 5 for row in rows)

    def test_exclusive_bounds(self, db):
        op = IndexScanOp(
            "t", "t_b", "t", SCHEMA,
            low=(3,), high=(5,), low_inclusive=False, high_inclusive=False,
        )
        rows = run(op, db)
        assert rows and all(row[1] == 4 for row in rows)

    def test_descending(self, db):
        op = IndexScanOp("t", "t_b", "t", SCHEMA, descending=True)
        values = [row[1] for row in run(op, db)]
        assert values == sorted(values, reverse=True)


class TestFilter:
    def test_filters(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        predicate = Comparison(ComparisonOp.EQ, TB, lit(3))
        rows = run(FilterOp(scan, predicate), db)
        assert rows and all(row[1] == 3 for row in rows)


class TestProject:
    def test_column_projection(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        op = ProjectOp(scan, [TB], RowSchema([TB]))
        rows = run(op, db)
        assert all(len(row) == 1 for row in rows)

    def test_computed_projection(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        double = Arithmetic(ArithmeticOp.MUL, TA, lit(2))
        op = ProjectOp(scan, [double], RowSchema([col("", "d")]))
        rows = run(op, db)
        assert rows[5][0] == 10

    def test_arity_mismatch(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        with pytest.raises(ExecutionError):
            ProjectOp(scan, [TA, TB], RowSchema([TA]))


class TestSort:
    def test_ascending(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        rows = run(SortOp(scan, OrderSpec.of(TB)), db)
        values = [row[1] for row in rows]
        assert values == sorted(values)

    def test_descending_and_secondary(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        rows = run(SortOp(scan, OrderSpec((desc(TB), desc(TA)))), db)
        keys = [(row[1], row[0]) for row in rows]
        assert keys == sorted(keys, reverse=True)

    def test_empty_order_rejected(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        with pytest.raises(ExecutionError):
            SortOp(scan, OrderSpec())

    def test_spill_accounting(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        context = ExecutionContext(db, sort_memory_rows=10)
        list(SortOp(scan, OrderSpec.of(TB)).rows(context))
        assert context.spill_pages > 0
        assert context.rows_sorted == 50


class TestSortMergeBoundaries:
    """External-merge edge cases around the ``memory_rows`` threshold.

    The slice-fill loop must land run boundaries exactly at
    ``memory_rows`` regardless of batch size, and every engine must
    produce byte-identical output.
    """

    ORDER = OrderSpec((desc(TB), desc(TA)))

    def expected(self, db):
        rows = TableScanOp("t", "t", SCHEMA).execute(ExecutionContext(db))
        return sorted(rows, key=lambda row: (row[1], row[0]), reverse=True)

    def sort_rows(self, db, mode, memory_rows, batch_size=0):
        context = ExecutionContext(
            db,
            mode=mode,
            sort_memory_rows=memory_rows,
            batch_size=batch_size,
        )
        scan = TableScanOp("t", "t", SCHEMA)
        rows = SortOp(scan, self.ORDER).execute(context)
        return rows, context

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_input_exactly_memory_rows(self, db, mode):
        # 50 input rows == memory_rows: exactly one full run spills.
        rows, context = self.sort_rows(db, mode, memory_rows=50)
        assert rows == self.expected(db)
        assert context.spill_pages == 2  # one run: write + read pass

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_input_one_row_over_memory(self, db, mode):
        # 50 rows with memory_rows=49: a full run plus a one-row run.
        rows, context = self.sort_rows(db, mode, memory_rows=49)
        assert rows == self.expected(db)
        assert context.spill_pages == 4  # two runs charged

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_batch_straddles_run_boundary(self, db, mode):
        # batch_size=20, memory_rows=30: the second batch (rows 20-39)
        # straddles the run boundary at row 30 and must split there.
        rows, context = self.sort_rows(
            db, mode, memory_rows=30, batch_size=20
        )
        assert rows == self.expected(db)
        assert context.rows_sorted == 50

    def test_byte_identical_across_engines(self, db):
        outputs = {
            mode: self.sort_rows(db, mode, memory_rows=30, batch_size=7)[0]
            for mode in ALL_MODES
        }
        assert outputs[MODE_COMPILED] == outputs[MODE_INTERPRETED]
        assert outputs[MODE_COMPILED] == outputs[MODE_VECTOR]


@pytest.fixture
def grouped_db():
    """Table with a low-cardinality leading column and suffix ties.

    ``g`` takes 10 distinct values (5 rows each); ``x`` collides within
    groups so per-group stability is observable through ``id``.
    """
    database = Database()
    database.create_table(
        TableSchema(
            "u",
            [
                Column("id", INTEGER, nullable=False),
                Column("g", INTEGER),
                Column("x", INTEGER),
            ],
            primary_key=("id",),
        ),
        rows=[(i, i % 10, (i * 3) % 4) for i in range(50)],
    )
    database.create_index(Index.on("u_g", "u", ["g"]))
    return database


UID, UG, UX = col("u", "id"), col("u", "g"), col("u", "x")
USCHEMA = RowSchema([UID, UG, UX])
UORDER = OrderSpec.of(UG, UX)


def grouped_scan():
    """Index scan delivering rows in ``g`` order — a sorted prefix."""
    return IndexScanOp("u", "u_g", "u", USCHEMA)


class TestPartialSort:
    def test_byte_identical_to_full_sort(self, grouped_db):
        full = SortOp(grouped_scan(), UORDER).execute(
            ExecutionContext(grouped_db)
        )
        partial = PartialSortOp(grouped_scan(), UORDER, 1).execute(
            ExecutionContext(grouped_db)
        )
        # Groups stream in prefix order; stable suffix sort within each
        # group reproduces the full stable sort byte-for-byte —
        # including the id order of (g, x) ties.
        assert partial == full

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_engines_byte_identical(self, grouped_db, mode):
        reference = PartialSortOp(grouped_scan(), UORDER, 1).execute(
            ExecutionContext(grouped_db, mode=MODE_INTERPRETED)
        )
        rows = PartialSortOp(grouped_scan(), UORDER, 1).execute(
            ExecutionContext(grouped_db, mode=mode, batch_size=7)
        )
        assert rows == reference

    def test_streams_one_group_at_a_time(self, grouped_db):
        # First batch arrives after buffering only one group, not the
        # whole input: with batch_size 5 (== group size) the first pull
        # must not have consumed all 50 input rows.
        context = ExecutionContext(grouped_db, batch_size=5)
        op = PartialSortOp(grouped_scan(), UORDER, 1)
        batches = op.batches(context)
        first = next(batches)
        assert len(first) == 5
        scan_metrics = [
            m for m in context.metrics.values()
            if m.label.startswith("index scan")
        ]
        assert scan_metrics and scan_metrics[0].rows < 50

    def test_group_metrics_and_counters(self, grouped_db):
        from repro.core.instrument import COUNTERS

        sorts_before = COUNTERS.get("exec.partial_sorts", 0)
        rows_before = COUNTERS.get("exec.rows_partial_sorted", 0)
        context = ExecutionContext(grouped_db)
        op = PartialSortOp(grouped_scan(), UORDER, 1)
        op.execute(context)
        metrics = context.metrics[op]
        assert metrics.groups == 10
        assert metrics.sorted_rows == 50
        assert context.rows_partial_sorted == 50
        assert context.rows_sorted == 0
        assert COUNTERS["exec.partial_sorts"] == sorts_before + 1
        assert COUNTERS["exec.rows_partial_sorted"] == rows_before + 50
        assert "groups=10" in metrics.render()
        assert "sorted=50" in metrics.render()

    def test_per_group_spill(self, grouped_db):
        # Groups of 5 with sort memory 3: every group spills, and the
        # merged output still matches the full sort.
        context = ExecutionContext(grouped_db, sort_memory_rows=3)
        op = PartialSortOp(grouped_scan(), UORDER, 1)
        rows = op.execute(context)
        full = SortOp(grouped_scan(), UORDER).execute(
            ExecutionContext(grouped_db)
        )
        assert rows == full
        assert context.spill_pages > 0
        assert context.metrics[op].spill_pages == context.spill_pages

    def test_checks_token_at_group_boundaries(self, grouped_db):
        class CountingToken(CancelToken):
            checks = 0

            def check(self):
                CountingToken.checks += 1
                super().check()

        CountingToken.checks = 0
        context = ExecutionContext(
            grouped_db, cancel_token=CountingToken(), batch_size=1024
        )
        PartialSortOp(grouped_scan(), UORDER, 1).execute(context)
        # One pull spans all 10 groups (batch_size > input), so the
        # wrapper checkpoints alone would poll only a handful of times;
        # the per-group-boundary polls push the count past group count.
        assert CountingToken.checks > 9

    def test_cancellation_stops_mid_stream(self, grouped_db):
        class TrippingToken(CancelToken):
            def __init__(self, after):
                super().__init__()
                self.remaining_checks = after

            def check(self):
                self.remaining_checks -= 1
                if self.remaining_checks <= 0:
                    self.cancel("test trip")
                super().check()

        context = ExecutionContext(
            grouped_db, cancel_token=TrippingToken(6), batch_size=1024
        )
        with pytest.raises(QueryCancelled):
            PartialSortOp(grouped_scan(), UORDER, 1).execute(context)

    def test_limit_truncates_each_group(self, grouped_db):
        limited = PartialSortOp(grouped_scan(), UORDER, 1, limit=2).execute(
            ExecutionContext(grouped_db)
        )
        full = PartialSortOp(grouped_scan(), UORDER, 1).execute(
            ExecutionContext(grouped_db)
        )
        expected = []
        for start in range(0, 50, 5):  # 10 groups of 5, already sorted
            expected.extend(full[start : start + 2])
        assert limited == expected
        # The global first-k rows are intact: a LIMIT above sees
        # exactly what it would see over the full sort.
        assert limited[:2] == full[:2]

    def test_validation(self, grouped_db):
        scan = grouped_scan()
        with pytest.raises(ExecutionError):
            PartialSortOp(scan, OrderSpec(), 0)
        with pytest.raises(ExecutionError):
            PartialSortOp(scan, UORDER, 0)
        with pytest.raises(ExecutionError):
            PartialSortOp(scan, UORDER, 2)  # whole order: nothing to sort
        with pytest.raises(ExecutionError):
            PartialSortOp(scan, UORDER, 1, limit=0)


class TestMaterialize:
    def test_repeated_iteration(self, db):
        op = MaterializeOp(TableScanOp("t", "t", SCHEMA))
        context = ExecutionContext(db)
        first = list(op.rows(context))
        db.reset_io()
        second = list(op.rows(context))
        assert first == second
        # Second pass reads the buffer, not the heap.
        assert db.buffer_pool.stats.total_accesses == 0


class TestExplain:
    def test_tree_rendering(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        op = SortOp(FilterOp(scan, Comparison(ComparisonOp.GT, TA, lit(0))),
                    OrderSpec.of(TB))
        text = op.explain()
        assert "sort" in text
        assert "filter" in text
        assert "table scan" in text
