"""Leaf/unary physical operators."""

import pytest

from repro import Column, Database, Index, TableSchema
from repro.core import OrderSpec
from repro.core.ordering import desc
from repro.errors import ExecutionError
from repro.executor import (
    ExecutionContext,
    FilterOp,
    IndexScanOp,
    ProjectOp,
    SortOp,
    TableScanOp,
)
from repro.executor.operators import MaterializeOp
from repro.expr import Arithmetic, Comparison, ComparisonOp, RowSchema, col, lit
from repro.expr.nodes import ArithmeticOp
from repro.sqltypes import INTEGER

TA, TB = col("t", "a"), col("t", "b")
SCHEMA = RowSchema([TA, TB])


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            [Column("a", INTEGER, nullable=False), Column("b", INTEGER)],
            primary_key=("a",),
        ),
        rows=[(i, (i * 7) % 10) for i in range(50)],
    )
    database.create_index(Index.on("t_b", "t", ["b"]))
    return database


def run(op, db):
    return op.execute(ExecutionContext(db))


class TestTableScan:
    def test_scans_all_rows(self, db):
        rows = run(TableScanOp("t", "t", SCHEMA), db)
        assert len(rows) == 50

    def test_charges_io(self, db):
        db.reset_io(cold=True)
        run(TableScanOp("t", "t", SCHEMA), db)
        assert db.buffer_pool.stats.total_misses > 0


class TestIndexScan:
    def test_full_scan_ordered(self, db):
        op = IndexScanOp("t", "t_b", "t", SCHEMA)
        rows = run(op, db)
        values = [row[1] for row in rows]
        assert values == sorted(values)
        assert len(rows) == 50

    def test_bounded_scan(self, db):
        op = IndexScanOp("t", "t_b", "t", SCHEMA, low=(3,), high=(5,))
        rows = run(op, db)
        assert rows and all(3 <= row[1] <= 5 for row in rows)

    def test_exclusive_bounds(self, db):
        op = IndexScanOp(
            "t", "t_b", "t", SCHEMA,
            low=(3,), high=(5,), low_inclusive=False, high_inclusive=False,
        )
        rows = run(op, db)
        assert rows and all(row[1] == 4 for row in rows)

    def test_descending(self, db):
        op = IndexScanOp("t", "t_b", "t", SCHEMA, descending=True)
        values = [row[1] for row in run(op, db)]
        assert values == sorted(values, reverse=True)


class TestFilter:
    def test_filters(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        predicate = Comparison(ComparisonOp.EQ, TB, lit(3))
        rows = run(FilterOp(scan, predicate), db)
        assert rows and all(row[1] == 3 for row in rows)


class TestProject:
    def test_column_projection(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        op = ProjectOp(scan, [TB], RowSchema([TB]))
        rows = run(op, db)
        assert all(len(row) == 1 for row in rows)

    def test_computed_projection(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        double = Arithmetic(ArithmeticOp.MUL, TA, lit(2))
        op = ProjectOp(scan, [double], RowSchema([col("", "d")]))
        rows = run(op, db)
        assert rows[5][0] == 10

    def test_arity_mismatch(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        with pytest.raises(ExecutionError):
            ProjectOp(scan, [TA, TB], RowSchema([TA]))


class TestSort:
    def test_ascending(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        rows = run(SortOp(scan, OrderSpec.of(TB)), db)
        values = [row[1] for row in rows]
        assert values == sorted(values)

    def test_descending_and_secondary(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        rows = run(SortOp(scan, OrderSpec((desc(TB), desc(TA)))), db)
        keys = [(row[1], row[0]) for row in rows]
        assert keys == sorted(keys, reverse=True)

    def test_empty_order_rejected(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        with pytest.raises(ExecutionError):
            SortOp(scan, OrderSpec())

    def test_spill_accounting(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        context = ExecutionContext(db, sort_memory_rows=10)
        list(SortOp(scan, OrderSpec.of(TB)).rows(context))
        assert context.spill_pages > 0
        assert context.rows_sorted == 50


class TestMaterialize:
    def test_repeated_iteration(self, db):
        op = MaterializeOp(TableScanOp("t", "t", SCHEMA))
        context = ExecutionContext(db)
        first = list(op.rows(context))
        db.reset_io()
        second = list(op.rows(context))
        assert first == second
        # Second pass reads the buffer, not the heap.
        assert db.buffer_pool.stats.total_accesses == 0


class TestExplain:
    def test_tree_rendering(self, db):
        scan = TableScanOp("t", "t", SCHEMA)
        op = SortOp(FilterOp(scan, Comparison(ComparisonOp.GT, TA, lit(0))),
                    OrderSpec.of(TB))
        text = op.explain()
        assert "sort" in text
        assert "filter" in text
        assert "table scan" in text
