"""The experiment functions themselves, at miniature scale.

The benchmark CLI (`python -m repro.bench`) is a deliverable; these
tests pin that each experiment runs, asserts what it claims, and fills
its report correctly — at SF small enough for the unit-test budget.
"""

import pytest

from repro.bench import run_experiment


class TestTable1Experiment:
    @pytest.fixture(scope="class")
    def report(self):
        return run_experiment("table1", scale_factor=0.002, runs=2)

    def test_ratio_recorded(self, report):
        assert report.data["wall_ratio"] > 0
        assert report.data["sim_ratio"] > 0

    def test_production_wins(self, report):
        # At tiny scale both wall-clock and the simulated model are
        # noisy (simulated elapsed folds in measured CPU time, and the
        # production plan trades I/O for avoided sorts); the
        # optimizer's cost estimates are the deterministic quantity
        # that must favour production.
        assert report.data["est_ratio"] > 1.0
        assert report.data["sim_ratio"] > 0.0

    def test_rows_rendered(self, report):
        assert any("wall-clock" in str(row[0]) for row in report.rows)
        assert report.headers


class TestComplexityExperiment:
    def test_monotone_growth(self):
        report = run_experiment("complexity", tables=4)
        counts = report.data["counts"]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]


class TestFigureExperiments:
    def test_fig7_checks_pass(self):
        report = run_experiment("fig7", scale_factor=0.002)
        assert all(row[1] == "yes" for row in report.rows), report.render()

    def test_fig8_checks_pass(self):
        report = run_experiment("fig8", scale_factor=0.002)
        assert all(row[1] == "yes" for row in report.rows), report.render()

    def test_fig1_plan_recorded(self):
        report = run_experiment("fig1")
        assert "group by" in report.data["plan"].explain()


class TestAblationExperiments:
    def test_reduce_ablation_shows_fewer_sorts(self):
        report = run_experiment("ablation_reduce")
        rows = {row[0]: row for row in report.rows}
        assert int(rows["reduction ON"][3]) < int(rows["reduction OFF"][3])

    def test_cover_ablation_shows_extra_sort(self):
        report = run_experiment("ablation_cover")
        rows = {row[0]: row for row in report.rows}
        assert int(rows["cover OFF"][3]) > int(rows["cover ON"][3])


class TestPrefetchAblation:
    def test_no_prefetch_costs_more_simulated_io(self):
        from repro.storage.buffer import BufferPool

        original = BufferPool.PREFETCH_WINDOW
        report = run_experiment(
            "ablation_prefetch", scale_factor=0.002, runs=1
        )
        # The window is restored even though the experiment mutates it.
        assert BufferPool.PREFETCH_WINDOW == original
        by_window = {row[0]: float(row[1]) for row in report.rows}
        assert by_window[1] >= by_window[32]
