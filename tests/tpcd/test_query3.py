"""The Section 8.1 experiment at test scale: Query 3 plans and results."""

import pytest

from repro import OptimizerConfig, run_query
from repro.optimizer.plan import OpKind
from repro.tpcd import QUERY_1, QUERY_3, tpcd_query


def db2_faithful(order_optimization=True):
    """DB2/CS 1996 operator repertoire: no hash join / hash group-by."""
    if order_optimization:
        config = OptimizerConfig()
    else:
        config = OptimizerConfig.disabled()
    config.enable_hash_join = False
    config.enable_hash_group_by = False
    return config


class TestQuery3Plans:
    def test_figure7_shape(self, tpcd_db):
        """Order opt on: ordered NLJ into lineitem's clustered index, no
        group-by sort, one top sort for the ORDER BY."""
        result = run_query(tpcd_db, QUERY_3, config=db2_faithful(True))
        plan = result.plan
        ordered_nlj = [
            node
            for node in plan.find_all(OpKind.NLJ_INDEX)
            if node.args.get("ordered") and node.args["index"] == "idx_l_orderkey"
        ]
        assert ordered_nlj, plan.explain()
        group_sorts = [
            node
            for node in plan.find_all(OpKind.SORT)
            if node.args.get("reason") == "group by"
        ]
        assert not group_sorts, plan.explain()
        assert plan.find_all(OpKind.GROUP_SORTED)
        top_sorts = [
            node
            for node in plan.find_all(OpKind.SORT)
            if node.args.get("reason") == "order by"
        ]
        assert len(top_sorts) == 1

    def test_figure8_shape(self, tpcd_db):
        """Order opt off: merge join on the order key, an extra sort for
        the GROUP BY, and the top ORDER BY sort."""
        result = run_query(tpcd_db, QUERY_3, config=db2_faithful(False))
        plan = result.plan
        assert plan.find_all(OpKind.MERGE_JOIN), plan.explain()
        group_sorts = [
            node
            for node in plan.find_all(OpKind.SORT)
            if node.args.get("reason") == "group by"
        ]
        assert group_sorts, plan.explain()
        # No ordered NLJ awareness in the disabled build.
        assert not any(
            node.args.get("ordered")
            for node in plan.find_all(OpKind.NLJ_INDEX)
        )

    def test_disabled_has_more_sorts(self, tpcd_db):
        enabled = run_query(tpcd_db, QUERY_3, config=db2_faithful(True))
        disabled = run_query(tpcd_db, QUERY_3, config=db2_faithful(False))
        assert disabled.plan.sort_count() > enabled.plan.sort_count()

    def test_results_identical(self, tpcd_db):
        enabled = run_query(tpcd_db, QUERY_3, config=db2_faithful(True))
        disabled = run_query(tpcd_db, QUERY_3, config=db2_faithful(False))
        assert enabled.rows == disabled.rows  # same ORDER BY, same rows

    def test_output_ordered_by_rev_desc(self, tpcd_db):
        result = run_query(tpcd_db, QUERY_3)
        revenues = [row[1] for row in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_estimated_cost_advantage(self, tpcd_db):
        enabled = run_query(tpcd_db, QUERY_3, config=db2_faithful(True))
        disabled = run_query(tpcd_db, QUERY_3, config=db2_faithful(False))
        assert disabled.plan.cost.total_ms > enabled.plan.cost.total_ms


class TestQuery1:
    def test_runs_and_groups(self, tpcd_db):
        result = run_query(tpcd_db, QUERY_1, config=db2_faithful(True))
        assert 1 <= len(result.rows) <= 6  # few flag/status combinations
        flags = [(row[0], row[1]) for row in result.rows]
        assert flags == sorted(flags)

    def test_group_by_order_by_share_one_sort(self, tpcd_db):
        result = run_query(tpcd_db, QUERY_1, config=db2_faithful(True))
        assert result.plan.sort_count() <= 1


class TestOtherQueries:
    @pytest.mark.parametrize("name", ["q4", "q5", "q10"])
    def test_runs_in_both_modes(self, tpcd_db, name):
        sql = tpcd_query(name)
        enabled = run_query(tpcd_db, sql, config=db2_faithful(True))
        disabled = run_query(tpcd_db, sql, config=db2_faithful(False))
        assert enabled.rows == disabled.rows

    def test_q6_scalar_aggregate_needs_no_sort(self, tpcd_db):
        result = run_query(tpcd_db, tpcd_query("q6"), config=db2_faithful(True))
        assert len(result.rows) == 1
        assert result.plan.sort_count() == 0

    def test_q5_output_ordered_by_revenue(self, tpcd_db):
        result = run_query(tpcd_db, tpcd_query("q5"))
        revenues = [row[1] for row in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_unknown_query_name(self):
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            tpcd_query("q99")
