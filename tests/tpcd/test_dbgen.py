"""TPC-D generator: shape and determinism."""

import datetime

import pytest

from repro.tpcd import TPCD_TABLES, TpcdGenerator, build_tpcd_database
from repro.tpcd.dbgen import END_DATE, START_DATE


class TestGenerator:
    def test_row_counts_scale(self):
        small = TpcdGenerator(0.001)
        large = TpcdGenerator(0.01)
        assert large.customers == 10 * small.customers
        assert large.orders == 10 * small.orders

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            TpcdGenerator(0)

    def test_deterministic(self):
        one = TpcdGenerator(0.001, seed=5)
        two = TpcdGenerator(0.001, seed=5)
        assert list(one.customer_rows()) == list(two.customer_rows())
        assert one.order_and_lineitem_rows() == two.order_and_lineitem_rows()

    def test_seed_changes_data(self):
        one = list(TpcdGenerator(0.001, seed=5).customer_rows())
        two = list(TpcdGenerator(0.001, seed=6).customer_rows())
        assert one != two

    def test_lineitems_clustered_by_orderkey(self):
        _orders, lineitems = TpcdGenerator(0.001).order_and_lineitem_rows()
        keys = [(row[0], row[3]) for row in lineitems]
        assert keys == sorted(keys)

    def test_order_dates_in_spec_window(self):
        orders, _lineitems = TpcdGenerator(0.001).order_and_lineitem_rows()
        for row in orders:
            assert START_DATE <= row[4] <= END_DATE

    def test_lineitems_per_order_one_to_seven(self):
        orders, lineitems = TpcdGenerator(0.001).order_and_lineitem_rows()
        per_order = {}
        for row in lineitems:
            per_order[row[0]] = per_order.get(row[0], 0) + 1
        assert set(per_order) == {row[0] for row in orders}
        assert all(1 <= n <= 7 for n in per_order.values())

    def test_total_price_matches_lineitems(self):
        orders, lineitems = TpcdGenerator(0.001).order_and_lineitem_rows()
        sums = {}
        for row in lineitems:
            sums[row[0]] = sums.get(row[0], 0) + row[5]
        for row in orders:
            assert row[3] == sums[row[0]]


class TestBuildDatabase:
    def test_all_tables_loaded(self, tpcd_db):
        for name in TPCD_TABLES:
            assert tpcd_db.store(name).row_count() > 0

    def test_indexes_present(self, tpcd_db):
        assert tpcd_db.catalog.index("idx_l_orderkey").clustered
        assert tpcd_db.catalog.index("pk_orders").unique

    def test_stats_collected(self, tpcd_db):
        stats = tpcd_db.catalog.table("customer").stats
        assert stats.row_count == tpcd_db.store("customer").row_count()
        assert stats.column("c_mktsegment").ndv == 5

    def test_referential_shape(self, tpcd_db):
        customer_keys = {
            row[0] for _r, row in tpcd_db.store("customer").heap.scan()
        }
        for _r, row in tpcd_db.store("orders").heap.scan():
            assert row[1] in customer_keys
