#!/usr/bin/env python
"""Static import-order lint for the ``repro`` package.

The codebase is layered bottom-up; a module may import only from its
own layer or below. This script parses every file under ``src/repro``
with :mod:`ast` (no imports are executed) and reports upward imports,
facade imports, and imports of unknown layers.

The canonical order lives in ``LAYERS`` below — it is *derived from the
actual dependency graph*, which is the authority; CLAUDE.md's prose
summary is a readable approximation. Two deliberate exemptions:

* ``repro/__init__.py`` is the public facade and re-exports from many
  layers by design;
* ``from repro import ...`` inside the package is always a violation —
  internal modules must name the concrete layer, or the facade's import
  time becomes a hidden cycle.

Run standalone (``python tools/check_imports.py``) or via the tier-1
wrapper ``tests/core/test_import_order.py``. Exit status 0 = clean.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

# Bottom-up. A module in layer i may import layers 0..i.
LAYERS = [
    "errors",
    "sqltypes",
    "expr",
    "core",
    "catalog",
    "qgm",
    "storage",
    "properties",
    "cost",
    "parser",
    "optimizer",
    "executor",
    "api",
    "service",
    "workload",
    "tpcd",
    "verify",
    "bench",
]
LAYER_INDEX = {name: index for index, name in enumerate(LAYERS)}

PACKAGE = "repro"


def _layer_of(path: Path, root: Path) -> str:
    """Layer name for a source file: ``src/repro/<layer>[/...].py``."""
    relative = path.relative_to(root)
    return relative.parts[0].removesuffix(".py")


def _imported_layers(
    tree: ast.AST,
) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, dotted_name)`` for every repro import, lazy
    function-level imports included — layering holds at any depth."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == PACKAGE or alias.name.startswith(
                    PACKAGE + "."
                ):
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative imports would hide the layer being named;
                # the codebase uses absolute imports throughout.
                yield node.lineno, "." * node.level + (node.module or "")
            elif node.module and (
                node.module == PACKAGE
                or node.module.startswith(PACKAGE + ".")
            ):
                yield node.lineno, node.module


def check(src_root: Path) -> List[str]:
    package_root = src_root / PACKAGE
    problems: List[str] = []
    for path in sorted(package_root.rglob("*.py")):
        if path == package_root / "__init__.py":
            continue  # the public facade re-exports across layers
        layer = _layer_of(path, package_root)
        if layer not in LAYER_INDEX:
            problems.append(f"{path}: unknown layer {layer!r}")
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, name in _imported_layers(tree):
            where = f"{path}:{lineno}"
            if name.startswith("."):
                problems.append(f"{where}: relative import {name!r}")
                continue
            if layer == "errors":
                # The exception taxonomy is imported by every layer, so
                # it must stay a strict import leaf: any repro import
                # here (even of itself) risks a cycle the moment the
                # imported module grows a dependency.
                problems.append(
                    f"{where}: 'errors' must stay an import leaf but "
                    f"imports {name}"
                )
                continue
            parts = name.split(".")
            if len(parts) == 1:
                problems.append(
                    f"{where}: imports the facade ({name!r}); name the "
                    "concrete layer instead"
                )
                continue
            target = parts[1]
            if target not in LAYER_INDEX:
                problems.append(
                    f"{where}: imports unknown layer {target!r}"
                )
            elif LAYER_INDEX[target] > LAYER_INDEX[layer]:
                problems.append(
                    f"{where}: {layer!r} imports upward from {target!r} "
                    f"({name})"
                )
    return problems


def main() -> int:
    src_root = Path(__file__).resolve().parent.parent / "src"
    problems = check(src_root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} import-order violation(s)")
        return 1
    print(f"import order clean across {len(LAYERS)} layers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
