"""Microbenchmarks of the four fundamental operations (Figures 2-5).

The paper's operations run inside the planner's inner loop (every plan
comparison calls Test Order), so their constant factors matter; these
benchmarks track them.
"""

import pytest

from repro.core import (
    GeneralOrderSpec,
    OrderContext,
    OrderSpec,
    cover_order,
    homogenize_order,
    reduce_order,
)
from repro.core import test_order as check_order
from repro.core.fd import fd
from repro.expr import col

COLUMNS = [col("t", f"c{i}") for i in range(8)]
OTHER = [col("u", f"c{i}") for i in range(8)]


@pytest.fixture(scope="module")
def context():
    ctx = OrderContext.empty()
    for mine, theirs in zip(COLUMNS[:4], OTHER[:4]):
        ctx = ctx.with_equality(mine, theirs)
    ctx = ctx.with_constant(COLUMNS[5])
    ctx = ctx.with_fd(fd([COLUMNS[0]], [COLUMNS[1]]))
    ctx = ctx.with_key(COLUMNS[:2])
    return ctx


SPEC = OrderSpec.of(*COLUMNS[:6])
PROPERTY = OrderSpec.of(*COLUMNS[:3])


def test_reduce_order(benchmark, context):
    reduced = benchmark(lambda: reduce_order(SPEC, context))
    assert len(reduced) <= len(SPEC)


def test_test_order(benchmark, context):
    benchmark(lambda: check_order(SPEC, PROPERTY, context))


def test_cover_order(benchmark, context):
    benchmark(lambda: cover_order(PROPERTY, SPEC, context))


def test_homogenize_order(benchmark, context):
    result = benchmark(
        lambda: homogenize_order(OrderSpec.of(*COLUMNS[:3]), OTHER, context)
    )
    assert result is not None


def test_general_order_satisfaction(benchmark, context):
    general = GeneralOrderSpec.from_group_by(COLUMNS[:4])
    benchmark(lambda: general.satisfied_by(PROPERTY, context))
