"""Microbenchmarks of the four fundamental operations (Figures 2-5).

The paper's operations run inside the planner's inner loop (every plan
comparison calls Test Order), so their constant factors matter; these
benchmarks track them.
"""

import pytest

from repro.core import (
    GeneralOrderSpec,
    OrderContext,
    OrderSpec,
    clear_memos,
    cover_order,
    homogenize_order,
    memoization_disabled,
    reduce_order,
)
from repro.core import test_order as check_order
from repro.core.fd import fd
from repro.expr import col

COLUMNS = [col("t", f"c{i}") for i in range(8)]
OTHER = [col("u", f"c{i}") for i in range(8)]


@pytest.fixture(scope="module")
def context():
    ctx = OrderContext.empty()
    for mine, theirs in zip(COLUMNS[:4], OTHER[:4]):
        ctx = ctx.with_equality(mine, theirs)
    ctx = ctx.with_constant(COLUMNS[5])
    ctx = ctx.with_fd(fd([COLUMNS[0]], [COLUMNS[1]]))
    ctx = ctx.with_key(COLUMNS[:2])
    return ctx


SPEC = OrderSpec.of(*COLUMNS[:6])
PROPERTY = OrderSpec.of(*COLUMNS[:3])


def test_reduce_order(benchmark, context):
    reduced = benchmark(lambda: reduce_order(SPEC, context))
    assert len(reduced) <= len(SPEC)


def test_test_order(benchmark, context):
    benchmark(lambda: check_order(SPEC, PROPERTY, context))


def test_cover_order(benchmark, context):
    benchmark(lambda: cover_order(PROPERTY, SPEC, context))


def test_homogenize_order(benchmark, context):
    result = benchmark(
        lambda: homogenize_order(OrderSpec.of(*COLUMNS[:3]), OTHER, context)
    )
    assert result is not None


def test_general_order_satisfaction(benchmark, context):
    general = GeneralOrderSpec.from_group_by(COLUMNS[:4])
    benchmark(lambda: general.satisfied_by(PROPERTY, context))


# ----------------------------------------------------------------------
# Scaling: context size x memoization
# ----------------------------------------------------------------------
#
# The planner replays the same (spec, context) pairs across thousands of
# plan comparisons; the memo tables turn that replay into dict lookups.
# These benchmarks track both regimes as FD-chain length grows: "cold"
# clears the memo registry every round (every call recomputes), "warm"
# keeps it (steady-state planner behaviour), and "nomemo" runs the
# unmemoized code path via the kill switch.

SIZES = [8, 16, 32]


def build_chain_context(size):
    columns = [col("s", f"c{i}") for i in range(size)]
    ctx = OrderContext.empty()
    for head, tail in zip(columns, columns[1:]):
        ctx = ctx.with_fd(fd([head], [tail]))
    ctx = ctx.with_key(columns[:1])
    return ctx, columns


def exercise(ctx, specs):
    for spec in specs:
        reduce_order(spec, ctx)
        check_order(spec, OrderSpec.of(*spec.columns[:1]), ctx)


@pytest.mark.parametrize("size", SIZES)
def test_scaling_cold(benchmark, size):
    ctx, columns = build_chain_context(size)
    specs = [OrderSpec.of(*columns[i : i + 4]) for i in range(size - 4)]

    def cold():
        clear_memos()
        exercise(ctx, specs)

    benchmark(cold)
    benchmark.extra_info["chain_length"] = size


@pytest.mark.parametrize("size", SIZES)
def test_scaling_warm(benchmark, size):
    ctx, columns = build_chain_context(size)
    specs = [OrderSpec.of(*columns[i : i + 4]) for i in range(size - 4)]
    exercise(ctx, specs)  # prime the memo tables
    benchmark(lambda: exercise(ctx, specs))
    benchmark.extra_info["chain_length"] = size


@pytest.mark.parametrize("size", SIZES)
def test_scaling_nomemo(benchmark, size):
    ctx, columns = build_chain_context(size)
    specs = [OrderSpec.of(*columns[i : i + 4]) for i in range(size - 4)]

    def nomemo():
        with memoization_disabled():
            exercise(ctx, specs)

    benchmark(nomemo)
    benchmark.extra_info["chain_length"] = size
