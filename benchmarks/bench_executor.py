"""Executor micro-benchmarks: compiled kernels vs the interpreter.

Operator-level throughput on TPC-D data (scan+filter, hash-join
build/probe, sort), each parametrized over the two executor engines so
a regression in either the kernel compiler or the batched operator
loops shows up here before it moves the end-to-end numbers in
``python -m repro.bench exec_ops``.
"""

import datetime

import pytest

from repro.core import OrderSpec
from repro.core.ordering import OrderKey, SortDirection
from repro.executor import (
    ExecutionContext,
    FilterOp,
    HashJoinOp,
    MODE_COMPILED,
    MODE_INTERPRETED,
    SortOp,
    TableScanOp,
)
from repro.expr import Comparison, ComparisonOp, col, lit
from repro.expr.schema import RowSchema

MODES = (MODE_COMPILED, MODE_INTERPRETED)


def table_schema(db, table, alias):
    return RowSchema(
        [col(alias, column.name) for column in db.catalog.table(table).columns]
    )


def scan(db, table, alias=None):
    alias = alias or table
    return TableScanOp(table, alias, table_schema(db, table, alias))


def drain(operator, db, mode):
    context = ExecutionContext(db, mode=mode)
    total = 0
    for batch in operator.batches(context):
        total += len(batch)
    return total


@pytest.mark.parametrize("mode", MODES)
def test_filter_throughput(benchmark, tpcd_db, mode):
    """Selective date predicate over the lineitem scan."""
    predicate = Comparison(
        ComparisonOp.GT,
        col("lineitem", "l_shipdate"),
        lit(datetime.date(1995, 3, 15)),
    )
    operator = FilterOp(scan(tpcd_db, "lineitem"), predicate)
    rows = benchmark(lambda: drain(operator, tpcd_db, mode))
    assert rows > 0
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = rows


@pytest.mark.parametrize("mode", MODES)
def test_hash_join_build_probe(benchmark, tpcd_db, mode):
    """Build on orders, probe with lineitem (the Q3 join core)."""

    def run():
        operator = HashJoinOp(
            scan(tpcd_db, "lineitem"),
            scan(tpcd_db, "orders"),
            outer_keys=[col("lineitem", "l_orderkey")],
            inner_keys=[col("orders", "o_orderkey")],
        )
        return drain(operator, tpcd_db, mode)

    rows = benchmark(run)
    assert rows > 0
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = rows


@pytest.mark.parametrize("mode", MODES)
def test_sort_throughput(benchmark, tpcd_db, mode):
    """Two-column mixed-direction sort of the orders table."""
    order = OrderSpec(
        [
            OrderKey(col("orders", "o_orderdate"), SortDirection.DESC),
            OrderKey(col("orders", "o_custkey")),
        ]
    )
    operator = SortOp(scan(tpcd_db, "orders"), order)
    rows = benchmark(lambda: drain(operator, tpcd_db, mode))
    assert rows > 0
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = rows
