"""Ablation benchmarks: each order-optimization technique in isolation.

These back the Section 8 discussion ("queries in these environments
frequently include a lot of redundancy — grouping on key columns,
sorting on columns that are bound to constants through predicates") by
turning one technique off at a time on a warehouse-style workload.
"""

import pytest

from repro.api import run_query
from repro.bench.experiments import db2_faithful_config
from repro.optimizer.plan import OpKind
from repro.tpcd import QUERY_3

REDUNDANT_SQL = (
    "select id, cat, region, sum(amount) as total "
    "from sku, sales where id = sku_id and region = 3 "
    "group by id, cat, region order by region, id"
)

COVER_SQL = (
    "select cat, region, sum(amount) as total "
    "from sku, sales where id = sku_id "
    "group by cat, region order by region"
)


class TestReduceAblation:
    def test_with_reduction(self, benchmark, warehouse_db):
        config = db2_faithful_config(True)
        result = benchmark.pedantic(
            lambda: run_query(warehouse_db, REDUNDANT_SQL, config=config),
            rounds=3,
            iterations=1,
        )
        sorts = result.plan.find_all(OpKind.SORT)
        benchmark.extra_info["sort_columns"] = [
            len(node.args["order"]) for node in sorts
        ]
        # Reduction strips region (constant) and cat (key-determined):
        # any sort needed is on a single column.
        assert all(len(node.args["order"]) == 1 for node in sorts)

    def test_without_reduction(self, benchmark, warehouse_db):
        config = db2_faithful_config(True)
        config.enable_reduction = False
        config.enable_general_orders = False
        result = benchmark.pedantic(
            lambda: run_query(warehouse_db, REDUNDANT_SQL, config=config),
            rounds=3,
            iterations=1,
        )
        sorts = result.plan.find_all(OpKind.SORT)
        benchmark.extra_info["sort_columns"] = [
            len(node.args["order"]) for node in sorts
        ]
        assert any(len(node.args["order"]) >= 2 for node in sorts)


class TestCoverAblation:
    def test_with_cover(self, benchmark, warehouse_db):
        config = db2_faithful_config(True)
        result = benchmark.pedantic(
            lambda: run_query(warehouse_db, COVER_SQL, config=config),
            rounds=3,
            iterations=1,
        )
        # One sort serves GROUP BY and ORDER BY.
        assert not any(
            node.args.get("reason") == "order by"
            for node in result.plan.find_all(OpKind.SORT)
        )

    def test_without_cover(self, benchmark, warehouse_db):
        config = db2_faithful_config(True)
        config.enable_cover = False
        result = benchmark.pedantic(
            lambda: run_query(warehouse_db, COVER_SQL, config=config),
            rounds=3,
            iterations=1,
        )
        benchmark.extra_info["sorts"] = result.plan.sort_count()
        assert result.rows


class TestSortAheadAblation:
    def test_with_sort_ahead(self, benchmark, tpcd_db):
        config = db2_faithful_config(True)
        result = benchmark.pedantic(
            lambda: run_query(tpcd_db, QUERY_3, config=config),
            rounds=3,
            iterations=1,
        )
        benchmark.extra_info["est_ms"] = round(result.plan.cost.total_ms)

    def test_without_sort_ahead(self, benchmark, tpcd_db):
        config = db2_faithful_config(True)
        config.enable_sort_ahead = False
        result = benchmark.pedantic(
            lambda: run_query(tpcd_db, QUERY_3, config=config),
            rounds=3,
            iterations=1,
        )
        benchmark.extra_info["est_ms"] = round(result.plan.cost.total_ms)


class TestHashExtension:
    """Section 1's recommendation: consider hash AND order-based plans."""

    def test_sort_based_repertoire(self, benchmark, tpcd_db):
        config = db2_faithful_config(True)
        result = benchmark.pedantic(
            lambda: run_query(tpcd_db, QUERY_3, config=config),
            rounds=3,
            iterations=1,
        )
        assert result.rows

    def test_hash_enabled_repertoire(self, benchmark, tpcd_db):
        from repro import OptimizerConfig

        result = benchmark.pedantic(
            lambda: run_query(tpcd_db, QUERY_3, config=OptimizerConfig()),
            rounds=3,
            iterations=1,
        )
        assert result.rows
