"""The Section 8 'internal benchmarks' analog, per query.

Each order-sensitive query of the suite experiment gets a timed pair
(production / disabled) so pytest-benchmark's comparison view shows the
per-technique win. `python -m repro.bench suite` prints the same data as
one table with a geometric mean.
"""

import pytest

from repro.api import execute, plan_query
from repro.bench.experiments import db2_faithful_config
from repro.tpcd import tpcd_query

WAREHOUSE_QUERIES = {
    "wh_keys": (
        "select id, cat, region, sum(amount) as total from sku, sales "
        "where id = sku_id group by id, cat, region order by id"
    ),
    "wh_const": (
        "select id, region, sum(amount) as total from sku, sales "
        "where id = sku_id and region = 3 "
        "group by id, region order by region, id"
    ),
    "wh_permute": (
        "select cat, region, sum(amount) as total from sku, sales "
        "where id = sku_id group by cat, region order by region"
    ),
}


def run_pair(benchmark, database, sql, order_optimization):
    config = db2_faithful_config(order_optimization)
    plan = plan_query(database, sql, config=config)
    result = benchmark.pedantic(
        lambda: execute(database, plan, cold_cache=True),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["sorts"] = plan.sort_count()
    assert result.rows is not None
    return plan


@pytest.mark.parametrize("name", sorted(WAREHOUSE_QUERIES))
def test_warehouse_production(benchmark, warehouse_db, name):
    run_pair(benchmark, warehouse_db, WAREHOUSE_QUERIES[name], True)


@pytest.mark.parametrize("name", sorted(WAREHOUSE_QUERIES))
def test_warehouse_disabled(benchmark, warehouse_db, name):
    run_pair(benchmark, warehouse_db, WAREHOUSE_QUERIES[name], False)


@pytest.mark.parametrize("name", ["q1", "q3", "q4"])
def test_tpcd_production(benchmark, tpcd_db, name):
    run_pair(benchmark, tpcd_db, tpcd_query(name), True)


@pytest.mark.parametrize("name", ["q1", "q3", "q4"])
def test_tpcd_disabled(benchmark, tpcd_db, name):
    run_pair(benchmark, tpcd_db, tpcd_query(name), False)
