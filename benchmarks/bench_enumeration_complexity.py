"""Section 5.2: join-enumeration complexity vs sort-ahead order count.

"It is possible to show that the complexity of join enumeration
increases by a factor of O(n^2) for n sort-ahead orders. In practice,
this has not been a problem, since typically n < 3."

We enumerate a 5-way join chain with n = 0..4 synthetic interesting
orders and record the number of plans generated; the benchmark times the
n = 0 and n = 4 extremes and asserts superlinear-but-bounded growth.
"""

import random

import pytest

from repro import Column, Database, Index, OptimizerConfig, TableSchema
from repro.core.ordering import OrderSpec
from repro.expr.nodes import ColumnRef
from repro.optimizer.enumerate import enumerate_joins
from repro.optimizer.planner import PlannerContext
from repro.parser import parse_query
from repro.qgm import normalize, rewrite
from repro.sqltypes import INTEGER

TABLES = 5
ALIASES = [f"t{i}" for i in range(TABLES)]


@pytest.fixture(scope="module")
def chain_db():
    rng = random.Random(52)
    database = Database()
    for alias in ALIASES:
        database.create_table(
            TableSchema(
                alias,
                [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
                primary_key=("k",),
            ),
            rows=[(i, rng.randint(0, 99)) for i in range(300)],
        )
        database.create_index(
            Index.on(f"{alias}_k", alias, ["k"], unique=True, clustered=True)
        )
    return database


@pytest.fixture(scope="module")
def chain_block(chain_db):
    joins = " and ".join(
        f"{ALIASES[i]}.k = {ALIASES[i + 1]}.k" for i in range(TABLES - 1)
    )
    sql = (
        "select "
        + ", ".join(f"{alias}.v" for alias in ALIASES)
        + " from "
        + ", ".join(ALIASES)
        + f" where {joins}"
    )
    return normalize(rewrite(parse_query(sql, chain_db.catalog)))


def enumerate_with_orders(database, block, order_count):
    planner = PlannerContext.build(database, OptimizerConfig(), block)
    planner.interesting_orders = [
        OrderSpec.of(ColumnRef(ALIASES[i], "v")) for i in range(order_count)
    ]
    enumerate_joins(planner)
    return planner.stats.plans_generated


@pytest.mark.parametrize("order_count", [0, 2, 4])
def test_enumeration_time(benchmark, chain_db, chain_block, order_count):
    plans = benchmark.pedantic(
        lambda: enumerate_with_orders(chain_db, chain_block, order_count),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["plans_generated"] = plans
    benchmark.extra_info["sort_ahead_orders"] = order_count


# ----------------------------------------------------------------------
# Star-join scaling: fact + k dimensions
# ----------------------------------------------------------------------
#
# Stars stress the algebra harder than chains: every dimension adds an
# equivalence class (fact.d_i = dim_i.k) and a key FD, so context
# content grows with the subset while DP subset count grows as 2^k.
# This is the shape the memoized algebra / cached contexts are for.

STAR_DIMS = [2, 4, 6]


def build_star(dims):
    rng = random.Random(7)
    database = Database()
    fact_columns = (
        [Column("id", INTEGER, nullable=False)]
        + [Column(f"d{i}", INTEGER) for i in range(dims)]
        + [Column("m", INTEGER)]
    )
    database.create_table(
        TableSchema("fact", fact_columns, primary_key=("id",)),
        rows=[
            tuple(
                [i]
                + [rng.randint(0, 49) for _ in range(dims)]
                + [rng.randint(0, 999)]
            )
            for i in range(400)
        ],
    )
    database.create_index(
        Index.on("fact_id", "fact", ["id"], unique=True, clustered=True)
    )
    for i in range(dims):
        database.create_table(
            TableSchema(
                f"dim{i}",
                [Column("k", INTEGER, nullable=False), Column("a", INTEGER)],
                primary_key=("k",),
            ),
            rows=[(j, rng.randint(0, 99)) for j in range(50)],
        )
        database.create_index(
            Index.on(f"dim{i}_k", f"dim{i}", ["k"], unique=True, clustered=True)
        )
    joins = " and ".join(f"fact.d{i} = dim{i}.k" for i in range(dims))
    sql = (
        "select fact.m, "
        + ", ".join(f"dim{i}.a" for i in range(dims))
        + " from fact, "
        + ", ".join(f"dim{i}" for i in range(dims))
        + f" where {joins}"
    )
    block = normalize(rewrite(parse_query(sql, database.catalog)))
    return database, block


@pytest.fixture(scope="module", params=STAR_DIMS)
def star(request):
    return (request.param,) + build_star(request.param)


def enumerate_star(database, block, dims):
    planner = PlannerContext.build(database, OptimizerConfig(), block)
    planner.interesting_orders = [
        OrderSpec.of(ColumnRef(f"dim{i}", "a")) for i in range(min(3, dims))
    ]
    enumerate_joins(planner)
    return planner.stats.plans_generated


def test_star_enumeration_time(benchmark, star):
    dims, database, block = star
    plans = benchmark.pedantic(
        lambda: enumerate_star(database, block, dims),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["plans_generated"] = plans
    benchmark.extra_info["dimensions"] = dims


def test_growth_is_superlinear_but_bounded(chain_db, chain_block):
    counts = [
        enumerate_with_orders(chain_db, chain_block, n) for n in range(5)
    ]
    assert counts[0] > 0
    # More sort-ahead orders -> more plans considered, monotonically.
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    assert counts[4] > counts[0]
    # ...but bounded: the paper's O(n^2) factor, not an explosion.
    assert counts[4] <= counts[0] * (1 + 4) ** 2
