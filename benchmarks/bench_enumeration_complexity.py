"""Section 5.2: join-enumeration complexity vs sort-ahead order count.

"It is possible to show that the complexity of join enumeration
increases by a factor of O(n^2) for n sort-ahead orders. In practice,
this has not been a problem, since typically n < 3."

We enumerate a 5-way join chain with n = 0..4 synthetic interesting
orders and record the number of plans generated; the benchmark times the
n = 0 and n = 4 extremes and asserts superlinear-but-bounded growth.
"""

import random

import pytest

from repro import Column, Database, Index, OptimizerConfig, TableSchema
from repro.core.ordering import OrderSpec
from repro.expr.nodes import ColumnRef
from repro.optimizer.enumerate import enumerate_joins
from repro.optimizer.planner import PlannerContext
from repro.parser import parse_query
from repro.qgm import normalize, rewrite
from repro.sqltypes import INTEGER

TABLES = 5
ALIASES = [f"t{i}" for i in range(TABLES)]


@pytest.fixture(scope="module")
def chain_db():
    rng = random.Random(52)
    database = Database()
    for alias in ALIASES:
        database.create_table(
            TableSchema(
                alias,
                [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
                primary_key=("k",),
            ),
            rows=[(i, rng.randint(0, 99)) for i in range(300)],
        )
        database.create_index(
            Index.on(f"{alias}_k", alias, ["k"], unique=True, clustered=True)
        )
    return database


@pytest.fixture(scope="module")
def chain_block(chain_db):
    joins = " and ".join(
        f"{ALIASES[i]}.k = {ALIASES[i + 1]}.k" for i in range(TABLES - 1)
    )
    sql = (
        "select "
        + ", ".join(f"{alias}.v" for alias in ALIASES)
        + " from "
        + ", ".join(ALIASES)
        + f" where {joins}"
    )
    return normalize(rewrite(parse_query(sql, chain_db.catalog)))


def enumerate_with_orders(database, block, order_count):
    planner = PlannerContext.build(database, OptimizerConfig(), block)
    planner.interesting_orders = [
        OrderSpec.of(ColumnRef(ALIASES[i], "v")) for i in range(order_count)
    ]
    enumerate_joins(planner)
    return planner.stats.plans_generated


@pytest.mark.parametrize("order_count", [0, 2, 4])
def test_enumeration_time(benchmark, chain_db, chain_block, order_count):
    plans = benchmark.pedantic(
        lambda: enumerate_with_orders(chain_db, chain_block, order_count),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["plans_generated"] = plans
    benchmark.extra_info["sort_ahead_orders"] = order_count


def test_growth_is_superlinear_but_bounded(chain_db, chain_block):
    counts = [
        enumerate_with_orders(chain_db, chain_block, n) for n in range(5)
    ]
    assert counts[0] > 0
    # More sort-ahead orders -> more plans considered, monotonically.
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    assert counts[4] > counts[0]
    # ...but bounded: the paper's O(n^2) factor, not an explosion.
    assert counts[4] <= counts[0] * (1 + 4) ** 2
