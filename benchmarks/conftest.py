"""Shared fixtures for the benchmark suite.

Scale is controlled by the REPRO_BENCH_SF environment variable
(default 0.01) so `pytest benchmarks/ --benchmark-only` stays fast while
`REPRO_BENCH_SF=0.05 pytest benchmarks/ --benchmark-only` approaches the
paper's regime more closely.
"""

import os

import pytest

from repro import OptimizerConfig
from repro.bench.experiments import (
    _figure1_database,
    _figure6_database,
    _warehouse_database,
    db2_faithful_config,
)
from repro.tpcd import build_tpcd_database


def bench_scale_factor() -> float:
    return float(os.environ.get("REPRO_BENCH_SF", "0.01"))


@pytest.fixture(scope="session")
def tpcd_db():
    return build_tpcd_database(
        scale_factor=bench_scale_factor(), buffer_pool_pages=1024
    )


@pytest.fixture(scope="session")
def fig1_db():
    return _figure1_database()


@pytest.fixture(scope="session")
def fig6_db():
    return _figure6_database()


@pytest.fixture(scope="session")
def warehouse_db():
    return _warehouse_database()


@pytest.fixture
def config_on() -> OptimizerConfig:
    return db2_faithful_config(True)


@pytest.fixture
def config_off() -> OptimizerConfig:
    return db2_faithful_config(False)
