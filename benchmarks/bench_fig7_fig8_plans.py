"""Figures 7 and 8: Query 3 plan choice in both builds.

These benchmarks time the *optimizer* (plan generation), since the
figures are about plan choice; execution time is Table 1's benchmark.
Shape assertions pin each figure's distinguishing features.
"""

from repro.api import plan_query
from repro.optimizer.plan import OpKind
from repro.tpcd import QUERY_3


def test_figure7_plan_choice(benchmark, tpcd_db, config_on):
    plan = benchmark(lambda: plan_query(tpcd_db, QUERY_3, config=config_on))
    benchmark.extra_info["plan"] = plan.explain(show_order=False)
    # Figure 7: ordered NLJ probing the clustered l_orderkey index...
    ordered = [
        node
        for node in plan.find_all(OpKind.NLJ_INDEX)
        if node.args.get("ordered")
    ]
    assert any(node.args["index"] == "idx_l_orderkey" for node in ordered)
    # ...the sort below the join also satisfies the GROUP BY...
    assert not any(
        node.args.get("reason") == "group by"
        for node in plan.find_all(OpKind.SORT)
    )
    assert plan.find_all(OpKind.GROUP_SORTED)
    # ...and the only remaining sort is the ORDER BY on (rev desc, date).
    top_sorts = [
        node
        for node in plan.find_all(OpKind.SORT)
        if node.args.get("reason") == "order by"
    ]
    assert len(top_sorts) == 1


def test_figure8_plan_choice(benchmark, tpcd_db, config_off):
    plan = benchmark(lambda: plan_query(tpcd_db, QUERY_3, config=config_off))
    benchmark.extra_info["plan"] = plan.explain(show_order=False)
    # Figure 8: merge-join on the order key...
    merges = plan.find_all(OpKind.MERGE_JOIN)
    assert merges
    # ...an extra sort feeding the GROUP BY...
    assert any(
        node.args.get("reason") == "group by"
        for node in plan.find_all(OpKind.SORT)
    )
    # ...and no ordered-NLJ awareness.
    assert not any(
        node.args.get("ordered") for node in plan.find_all(OpKind.NLJ_INDEX)
    )
