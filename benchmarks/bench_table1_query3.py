"""Table 1: TPC-D Query 3 elapsed time, production vs disabled.

The paper reports 192 s (production) vs 393 s (disabled) on a 1 GB
database — a 2.04x ratio. These benchmarks measure the same pair at our
scale; compare the two benchmark means to read off the ratio, and see
``extra_info`` for the simulated (I/O-model) elapsed times.
"""

from repro.api import execute, plan_query
from repro.optimizer.plan import OpKind
from repro.tpcd import QUERY_3


def _run(database, config):
    plan = plan_query(database, QUERY_3, config=config)

    def work():
        return execute(database, plan, cold_cache=True)

    return plan, work


def test_query3_production(benchmark, tpcd_db, config_on):
    plan, work = _run(tpcd_db, config_on)
    result = benchmark.pedantic(work, rounds=5, iterations=1)
    benchmark.extra_info["simulated_ms"] = round(result.simulated_elapsed_ms)
    benchmark.extra_info["sorts"] = plan.sort_count()
    benchmark.extra_info["paper_seconds"] = 192
    # Figure 7 features must hold for the measurement to be meaningful.
    assert any(
        node.args.get("ordered") for node in plan.find_all(OpKind.NLJ_INDEX)
    )
    assert result.rows


def test_query3_disabled(benchmark, tpcd_db, config_off):
    plan, work = _run(tpcd_db, config_off)
    result = benchmark.pedantic(work, rounds=5, iterations=1)
    benchmark.extra_info["simulated_ms"] = round(result.simulated_elapsed_ms)
    benchmark.extra_info["sorts"] = plan.sort_count()
    benchmark.extra_info["paper_seconds"] = 393
    assert plan.find_all(OpKind.MERGE_JOIN)
    assert result.rows


def test_query3_ratio_holds(tpcd_db, config_on, config_off):
    """Non-timing assertion: the disabled build is materially slower
    (paper: 2.04x; we accept anything >= 1.2x on simulated elapsed)."""
    plan_on, work_on = _run(tpcd_db, config_on)
    plan_off, work_off = _run(tpcd_db, config_off)
    on = min(work_on().simulated_elapsed_ms for _ in range(3))
    off = min(work_off().simulated_elapsed_ms for _ in range(3))
    assert off / on >= 1.2, f"ratio {off / on:.2f}"
    assert plan_off.sort_count() > plan_on.sort_count()
