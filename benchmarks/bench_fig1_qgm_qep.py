"""Figure 1: the simple QGM/QEP example query.

``select a.y, sum(b.y) from a, b where a.x = b.x group by a.y`` — the
benchmark measures end-to-end optimize+execute, and asserts the QEP uses
an order-based GROUP BY fed by ordered access (the figure's plan shape:
sort/merge feeding GROUP BY, never a re-sort above the join).
"""

from repro.api import run_query
from repro.optimizer.plan import OpKind

SQL = (
    "select a.y, sum(b.y) as total from a, b "
    "where a.x = b.x group by a.y"
)


def test_figure1_query(benchmark, fig1_db, config_on):
    result = benchmark.pedantic(
        lambda: run_query(fig1_db, SQL, config=config_on),
        rounds=5,
        iterations=1,
    )
    plan = result.plan
    benchmark.extra_info["plan"] = plan.explain(show_order=False)
    assert plan.find_all(OpKind.GROUP_SORTED)
    assert result.rows


def test_figure1_planning_only(benchmark, fig1_db, config_on):
    from repro.api import plan_query

    plan = benchmark(lambda: plan_query(fig1_db, SQL, config=config_on))
    assert plan.root is not None
