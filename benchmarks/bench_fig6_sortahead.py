"""Figure 6 / Section 6: sort-ahead across two joins.

The production build pushes ONE sort below both joins; it satisfies the
join method, the GROUP BY, and the ORDER BY. The disabled build needs
two sorts. Both are measured; plan shapes are asserted.
"""

from repro.api import run_query
from repro.bench.experiments import FIGURE6_SQL
from repro.optimizer.plan import OpKind


def test_figure6_production(benchmark, fig6_db, config_on):
    result = benchmark.pedantic(
        lambda: run_query(fig6_db, FIGURE6_SQL, config=config_on),
        rounds=5,
        iterations=1,
    )
    plan = result.plan
    benchmark.extra_info["sorts"] = plan.sort_count()
    # One sort, pushed below the joins (reason: sort-ahead or merge-join),
    # and no ORDER BY sort at the top.
    assert plan.sort_count() == 1
    assert not any(
        node.args.get("reason") == "order by"
        for node in plan.find_all(OpKind.SORT)
    )
    assert plan.find_all(OpKind.GROUP_SORTED)


def test_figure6_disabled(benchmark, fig6_db, config_off):
    result = benchmark.pedantic(
        lambda: run_query(fig6_db, FIGURE6_SQL, config=config_off),
        rounds=5,
        iterations=1,
    )
    plan = result.plan
    benchmark.extra_info["sorts"] = plan.sort_count()
    assert plan.sort_count() >= 2


def test_figure6_same_answers(fig6_db, config_on, config_off):
    on = run_query(fig6_db, FIGURE6_SQL, config=config_on)
    off = run_query(fig6_db, FIGURE6_SQL, config=config_off)
    assert on.rows == off.rows
