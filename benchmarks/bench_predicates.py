"""Predicate micro-benchmarks: selection vectors vs row kernels.

Wide conjunctions and disjunctions over the lineitem scan at varying
selectivities, parametrized over the compiled row engine and the vector
engine. This is the isolation chamber for the vector module's two
claims — column-at-a-time loops beat per-row closure dispatch, and
cost-ordered terms beat source order — without the joins, sorts, and
buffer-pool accounting that dominate the end-to-end ``exec_ops``
numbers.
"""

import datetime

import pytest

from repro.executor import (
    ExecutionContext,
    FilterOp,
    MODE_COMPILED,
    MODE_VECTOR,
    TableScanOp,
)
from repro.expr import BooleanExpr, BooleanOp, Comparison, ComparisonOp, col, lit
from repro.expr.schema import RowSchema

MODES = (MODE_COMPILED, MODE_VECTOR)

L = "lineitem"


def table_schema(db, table, alias):
    return RowSchema(
        [col(alias, column.name) for column in db.catalog.table(table).columns]
    )


def scan(db, table):
    return TableScanOp(table, table, table_schema(db, table, table))


def drain(operator, db, mode):
    context = ExecutionContext(db, mode=mode)
    total = 0
    for batch in operator.batches(context):
        total += len(batch)
    return total


def run_filter(benchmark, db, mode, predicate):
    operator = FilterOp(scan(db, L), predicate)
    rows = benchmark(lambda: drain(operator, db, mode))
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = rows
    return rows


@pytest.mark.parametrize("mode", MODES)
def test_single_selective_predicate(benchmark, tpcd_db, mode):
    """One cheap comparison keeping ~1% of rows."""
    predicate = Comparison(
        ComparisonOp.LT, col(L, "l_quantity"), lit(2)
    )
    assert run_filter(benchmark, tpcd_db, mode, predicate) > 0


@pytest.mark.parametrize("mode", MODES)
def test_wide_conjunction(benchmark, tpcd_db, mode):
    """Q6-shaped 4-term AND: date range + discount band + quantity."""
    predicate = BooleanExpr(
        BooleanOp.AND,
        (
            Comparison(
                ComparisonOp.GE,
                col(L, "l_shipdate"),
                lit(datetime.date(1994, 1, 1)),
            ),
            Comparison(
                ComparisonOp.LT,
                col(L, "l_shipdate"),
                lit(datetime.date(1995, 1, 1)),
            ),
            Comparison(ComparisonOp.GE, col(L, "l_discount"), lit(0.05)),
            Comparison(ComparisonOp.LT, col(L, "l_quantity"), lit(24)),
        ),
    )
    assert run_filter(benchmark, tpcd_db, mode, predicate) > 0


@pytest.mark.parametrize("mode", MODES)
def test_wide_disjunction(benchmark, tpcd_db, mode):
    """4-term OR mixing a broad disjunct with narrow ones: the
    accepted-row bypass means later disjuncts see only the leftovers."""
    predicate = BooleanExpr(
        BooleanOp.OR,
        (
            Comparison(ComparisonOp.LT, col(L, "l_quantity"), lit(10)),
            Comparison(ComparisonOp.GT, col(L, "l_discount"), lit(0.09)),
            Comparison(ComparisonOp.EQ, col(L, "l_returnflag"), lit("R")),
            Comparison(
                ComparisonOp.GT,
                col(L, "l_shipdate"),
                lit(datetime.date(1998, 9, 1)),
            ),
        ),
    )
    assert run_filter(benchmark, tpcd_db, mode, predicate) > 0


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("keep", ["low", "high"])
def test_and_selectivity_extremes(benchmark, tpcd_db, mode, keep):
    """The same conjunction at ~0% and ~100% keep rate: the vector win
    should widen as the first term discards more of the selection."""
    quantity_cap = lit(1 if keep == "low" else 100)
    predicate = BooleanExpr(
        BooleanOp.AND,
        (
            Comparison(ComparisonOp.LT, col(L, "l_quantity"), quantity_cap),
            Comparison(ComparisonOp.GE, col(L, "l_extendedprice"), lit(0.0)),
            Comparison(ComparisonOp.NE, col(L, "l_linestatus"), lit("?")),
        ),
    )
    run_filter(benchmark, tpcd_db, mode, predicate)
    benchmark.extra_info["keep"] = keep
