"""The paper's headline experiment: TPC-D Query 3, end to end.

Builds a synthetic TPC-D database, plans and runs Query 3 with order
optimization enabled (Figure 7's plan) and disabled (Figure 8's plan),
and prints a Table-1-style comparison.

Run:  python examples/tpcd_query3.py [scale_factor]
      (default scale factor 0.01 ~ 15k orders / 60k lineitems)
"""

import sys
import time

from repro.api import execute, plan_query
from repro.bench.experiments import db2_faithful_config
from repro.tpcd import QUERY_3, build_tpcd_database


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"building TPC-D database at scale factor {scale_factor}...")
    started = time.time()
    database = build_tpcd_database(
        scale_factor=scale_factor, buffer_pool_pages=1024
    )
    print(
        f"  done in {time.time() - started:.1f}s: "
        f"{database.store('orders').row_count():,} orders, "
        f"{database.store('lineitem').row_count():,} lineitems"
    )
    print()
    print(QUERY_3.strip())

    results = {}
    for label, order_optimization in (
        ("production (order optimization ON)", True),
        ("disabled  (order optimization OFF)", False),
    ):
        config = db2_faithful_config(order_optimization)
        plan = plan_query(database, QUERY_3, config=config)
        print()
        print("=" * 72)
        print(label)
        print("=" * 72)
        print(plan.explain())
        runs = [execute(database, plan, cold_cache=True) for _ in range(3)]
        wall = sum(r.elapsed_seconds for r in runs) / len(runs)
        sim = sum(r.simulated_elapsed_ms for r in runs) / len(runs)
        print(
            f"\n  rows: {len(runs[-1].rows)}   wall: {wall * 1000:.0f} ms   "
            f"simulated (I/O model): {sim:.0f} ms   "
            f"I/O: {runs[-1].io_stats}"
        )
        results[label] = (wall, sim, runs[-1].rows)

    (on_wall, on_sim, on_rows), (off_wall, off_sim, off_rows) = results.values()
    assert on_rows == off_rows, "both plans must return identical answers"
    print()
    print("=" * 72)
    print("Table 1 (paper: 192 s vs 393 s on 1GB TPC-D, ratio 2.04)")
    print("=" * 72)
    print(f"  wall-clock ratio (disabled / production): {off_wall / on_wall:.2f}")
    print(f"  simulated  ratio (disabled / production): {off_sim / on_sim:.2f}")
    print("  top 3 rows:", on_rows[:3])


if __name__ == "__main__":
    main()
