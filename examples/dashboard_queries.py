"""A reporting-dashboard scenario: the newer engine features together.

Dashboards re-run the same parameterized queries with different filter
values, page results with Top-N, wrap aggregations in views, and pad
missing dimensions with outer joins. This example shows how the paper's
order machinery keeps working through all of it:

* host variables are constants for reduction (§4.1);
* a grouped view's keys/FDs flow into the outer block;
* ORDER BY + FETCH FIRST becomes a bounded top-n sort;
* a LEFT JOIN contributes its one-directional FD.

Run:  python examples/dashboard_queries.py
"""

import random

from repro import (
    Column,
    Database,
    Index,
    TableSchema,
    execute,
    run_query,
)
from repro.sqltypes import DATE, INTEGER, varchar


def build() -> Database:
    rng = random.Random(404)
    db = Database()
    db.create_table(
        TableSchema(
            "account",
            [
                Column("aid", INTEGER, nullable=False),
                Column("region", INTEGER, nullable=False),
                Column("tier", varchar(12)),
            ],
            primary_key=("aid",),
        ),
        rows=[
            (i, rng.randrange(8), rng.choice(["free", "pro", "enterprise"]))
            for i in range(3000)
        ],
    )
    db.create_table(
        TableSchema(
            "event",
            [
                Column("aid", INTEGER, nullable=False),
                Column("day", DATE, nullable=False),
                Column("clicks", INTEGER, nullable=False),
            ],
        ),
        rows=[
            (
                rng.randrange(3500),  # some events from unknown accounts
                f"1996-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                rng.randint(1, 50),
            )
            for _ in range(25000)
        ],
    )
    db.create_index(Index.on("pk_account", "account", ["aid"], unique=True, clustered=True))
    db.create_index(Index.on("event_aid", "event", ["aid"], clustered=True))
    return db


def main() -> None:
    db = build()

    print("=" * 72)
    print("1. Parameterized drill-down: the plan is built once, the host")
    print("   variable keeps ORDER BY (region, aid) reduced to (aid)")
    print("=" * 72)
    sql = (
        "select aid, region, tier from account "
        "where region = :r order by region, aid"
    )
    first = run_query(db, sql, parameters={"r": 3})
    print(first.plan.explain())
    print(f"-> sorts: {first.plan.sort_count()} (the key index covers it)")
    for value in (0, 5):
        page = execute(db, first.plan, parameters={"r": value})
        print(f"-> region {value}: {len(page.rows)} accounts")
    print()

    print("=" * 72)
    print("2. Top-N leaderboard over a grouped view: the view is planned")
    print("   as a derived table; its grouping key survives renaming")
    print("=" * 72)
    sql = (
        "select v.aid, v.total from "
        "(select aid, sum(clicks) as total from event group by aid) v "
        "order by v.total desc fetch first 5 rows only"
    )
    result = run_query(db, sql)
    print(result.plan.explain())
    print(f"-> top 5 accounts by clicks: {result.rows}")
    print()

    print("=" * 72)
    print("3. Outer join padding: every account appears, even with no")
    print("   events; ORDER BY (aid, v.aid) reduces via the outer-join FD")
    print("=" * 72)
    sql = (
        "select account.aid, v.total from account left join "
        "(select aid, sum(clicks) as total from event group by aid) v "
        "on account.aid = v.aid "
        "order by account.aid, v.aid fetch first 8 rows only"
    )
    result = run_query(db, sql)
    print(result.plan.explain())
    padded = sum(1 for row in result.rows if row[1] is None)
    print(f"-> first 8 accounts, {padded} without events (padded NULL)")


if __name__ == "__main__":
    main()
