"""Quickstart: build a database, run SQL, inspect plans.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.sqltypes import INTEGER, varchar


def build_database() -> Database:
    """A small employees/departments schema with keys and indexes."""
    rng = random.Random(2024)
    db = Database()
    db.create_table(
        TableSchema(
            "dept",
            [
                Column("id", INTEGER, nullable=False),
                Column("name", varchar(20), nullable=False),
            ],
            primary_key=("id",),
        ),
        rows=[(i, f"dept-{i}") for i in range(20)],
    )
    db.create_table(
        TableSchema(
            "emp",
            [
                Column("id", INTEGER, nullable=False),
                Column("dept_id", INTEGER, nullable=False),
                Column("salary", INTEGER),
                Column("level", INTEGER),
            ],
            primary_key=("id",),
        ),
        rows=[
            (i, rng.randrange(20), rng.randint(40, 200) * 1000, rng.randint(1, 5))
            for i in range(5000)
        ],
    )
    db.create_index(Index.on("pk_dept", "dept", ["id"], unique=True, clustered=True))
    db.create_index(Index.on("pk_emp", "emp", ["id"], unique=True, clustered=True))
    db.create_index(Index.on("emp_dept", "emp", ["dept_id"], clustered=False))
    return db


def main() -> None:
    db = build_database()

    print("=" * 72)
    print("1. A simple ordered query — the key index makes the sort free")
    print("=" * 72)
    result = run_query(db, "select id, salary from emp where level = 3 order by id")
    print(result.plan.explain())
    print(f"-> {len(result.rows)} rows, first 3: {result.rows[:3]}")
    print(f"-> sorts in plan: {result.plan.sort_count()}")
    print()

    print("=" * 72)
    print("2. Join + GROUP BY + ORDER BY — one sort can serve several masters")
    print("   (sort/merge/NLJ repertoire, as in 1996's DB2)")
    print("=" * 72)
    # Note the clause order: GROUP BY leads with level, ORDER BY wants
    # name — only the degrees-of-freedom machinery (paper §7) can see
    # that one sort on (name, level) serves both.
    sql = (
        "select d.name, e.level, sum(e.salary) as payroll "
        "from dept d, emp e where d.id = e.dept_id "
        "group by e.level, d.name order by d.name"
    )
    sort_based = OptimizerConfig(
        enable_hash_join=False, enable_hash_group_by=False
    )
    result = run_query(db, sql, config=sort_based)
    print(result.plan.explain())
    print(f"-> {len(result.rows)} rows, top: {result.rows[0]}")
    print()

    print("=" * 72)
    print("3. The same query with order optimization disabled (the paper's")
    print("   Section 8 baseline) — watch the extra sorts appear")
    print("=" * 72)
    disabled = OptimizerConfig.disabled()
    disabled.enable_hash_join = False
    disabled.enable_hash_group_by = False
    baseline = run_query(db, sql, config=disabled)
    print(baseline.plan.explain())
    print(
        f"-> identical answers: {baseline.rows == result.rows}; "
        f"sorts: {baseline.plan.sort_count()} vs {result.plan.sort_count()}"
    )
    print()

    print("=" * 72)
    print("4. Redundancy elimination — sorting on a constant-bound column")
    print("=" * 72)
    sql = (
        "select id, level, salary from emp "
        "where level = 2 order by level, id"
    )
    result = run_query(db, sql)
    print(result.plan.explain())
    print(
        "-> ORDER BY (level, id) reduced to (id): level is bound to the "
        "constant 2"
    )


if __name__ == "__main__":
    main()
