"""A tour of the paper's Section 4 operations, example by example.

Every worked example from "Fundamental Techniques for Order
Optimization" (Simmen, Shekita, Malkemus; SIGMOD '96), executed with the
library's public order-algebra API.

Run:  python examples/order_algebra_tour.py
"""

from repro import (
    GeneralOrderSpec,
    OrderContext,
    OrderSpec,
    col,
    cover_order,
    homogenize_order,
    reduce_order,
    test_order,
)
from repro.core.fd import fd
from repro.expr import Comparison, ComparisonOp, lit

X, Y, Z = col("t", "x"), col("t", "y"), col("t", "z")
AX, AY = col("a", "x"), col("a", "y")
BX, BY = col("b", "x"), col("b", "y")


def heading(text: str) -> None:
    print()
    print(text)
    print("-" * len(text))


def main() -> None:
    print("Section 4 of the paper, as executable examples")

    heading("4.1 Reduce Order: constants (predicate x = 10)")
    context = OrderContext.from_predicates(
        [Comparison(ComparisonOp.EQ, X, lit(10))]
    )
    interesting = OrderSpec.of(X, Y)
    print(f"I = {interesting}, predicate x = 10")
    print(f"reduced: {reduce_order(interesting, context)}")
    print(f"OP = (t.y) satisfies I? {test_order(interesting, OrderSpec.of(Y), context)}")

    heading("4.1 Reduce Order: equivalence classes (predicate x = y)")
    context = OrderContext.empty().with_equality(X, Y)
    interesting = OrderSpec.of(X, Z)
    order_property = OrderSpec.of(Y, Z)
    print(f"I = {interesting}, OP = {order_property}, predicate x = y")
    print(f"I reduced:  {reduce_order(interesting, context)}")
    print(f"OP reduced: {reduce_order(order_property, context)}")
    print(f"OP satisfies I? {test_order(interesting, order_property, context)}")

    heading("4.1 Reduce Order: keys ({x} -> everything)")
    context = OrderContext.empty().with_key([X])
    print(f"I = (t.x, t.y) with x a key: {reduce_order(OrderSpec.of(X, Y), context)}")
    print(f"OP = (t.x, t.z) reduces to:  {reduce_order(OrderSpec.of(X, Z), context)}")
    print(
        "OP satisfies I? "
        f"{test_order(OrderSpec.of(X, Y), OrderSpec.of(X, Z), context)}"
    )

    heading("4.1 Reduction to the empty order")
    context = OrderContext.from_predicates(
        [Comparison(ComparisonOp.EQ, X, lit(10))]
    )
    print(f"I = (t.x) with x = 10: {reduce_order(OrderSpec.of(X), context)!r}")
    print("-> trivially satisfied by any stream")

    heading("4.3 Cover Order")
    context = OrderContext.empty()
    print(
        f"cover of (t.x) and (t.x, t.y): "
        f"{cover_order(OrderSpec.of(X), OrderSpec.of(X, Y), context)}"
    )
    print(
        f"cover of (t.y, t.x) and (t.x, t.y, t.z): "
        f"{cover_order(OrderSpec.of(Y, X), OrderSpec.of(X, Y, Z), context)}"
    )
    context = OrderContext.from_predicates(
        [Comparison(ComparisonOp.EQ, X, lit(10))]
    )
    print(
        f"...same, after applying x = 10: "
        f"{cover_order(OrderSpec.of(Y, X), OrderSpec.of(X, Y, Z), context)}"
    )

    heading("4.4 Homogenize Order (push-down through a join)")
    context = OrderContext.empty().with_equality(AX, BX)
    interesting = OrderSpec.of(AX, BY)
    print(f"I = {interesting} from ORDER BY a.x, b.y; predicate a.x = b.x")
    print(
        f"homogenized to table b: "
        f"{homogenize_order(interesting, [BX, BY], context)}"
    )
    print(
        f"homogenized to table a: "
        f"{homogenize_order(interesting, [AX, AY], context)}"
    )
    with_key_fd = context.with_fd(fd([AX], [BY]))
    print(
        f"...with {{a.x}} -> {{b.y}} (a.x stays a key): "
        f"{homogenize_order(interesting, [AX, AY], with_key_fd)}"
    )

    heading("Section 7: degrees of freedom (the sixteen orders)")
    general = GeneralOrderSpec.from_group_by_with_distinct_agg([X, Y], Z)
    orders = general.enumerate_orders(limit=100)
    print(f"GROUP BY x, y with SUM(DISTINCT z) admits {len(orders)} orders:")
    for order in orders:
        print(f"  {order}")
    print(
        f"(t.y desc, t.x, t.z desc) satisfies it? "
        f"{general.satisfied_by(orders[-1], OrderContext.empty())}"
    )
    aligned = general.aligned_with(OrderSpec.of(X), OrderContext.empty())
    print(f"aligned with ORDER BY (t.x): {aligned}")


if __name__ == "__main__":
    main()
