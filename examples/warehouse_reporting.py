"""The introduction's motivating scenario: a decision-support warehouse.

Section 8: "applications in these environments cannot fully anticipate
the predicates that will be specified by end-users at runtime... queries
frequently include a lot of redundancy — grouping on key columns,
sorting on columns that are bound to constants through predicates."

This example builds a reporting star schema, then runs the kinds of
tool-generated queries the paper describes and shows the redundancy
being optimized away.

Run:  python examples/warehouse_reporting.py
"""

import random

from repro import (
    Column,
    Database,
    Index,
    OptimizerConfig,
    TableSchema,
    run_query,
)
from repro.optimizer.plan import OpKind
from repro.sqltypes import DATE, INTEGER, varchar


def build_warehouse() -> Database:
    rng = random.Random(1996)
    db = Database()
    db.create_table(
        TableSchema(
            "product",
            [
                Column("pid", INTEGER, nullable=False),
                Column("category", varchar(12), nullable=False),
                Column("brand", varchar(12), nullable=False),
            ],
            primary_key=("pid",),
        ),
        rows=[
            (i, f"cat-{i % 12}", f"brand-{i % 40}") for i in range(2000)
        ],
    )
    db.create_table(
        TableSchema(
            "store",
            [
                Column("sid", INTEGER, nullable=False),
                Column("region", varchar(10), nullable=False),
            ],
            primary_key=("sid",),
        ),
        rows=[(i, f"region-{i % 6}") for i in range(60)],
    )
    db.create_table(
        TableSchema(
            "sales",
            [
                Column("pid", INTEGER, nullable=False),
                Column("sid", INTEGER, nullable=False),
                Column("day", DATE, nullable=False),
                Column("units", INTEGER, nullable=False),
            ],
        ),
        rows=[
            (
                rng.randrange(2000),
                rng.randrange(60),
                f"1995-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                rng.randint(1, 20),
            )
            for _ in range(30000)
        ],
    )
    db.create_index(Index.on("pk_product", "product", ["pid"], unique=True, clustered=True))
    db.create_index(Index.on("pk_store", "store", ["sid"], unique=True, clustered=True))
    db.create_index(Index.on("sales_pid", "sales", ["pid"], clustered=True))
    db.create_index(Index.on("sales_day", "sales", ["day"]))
    return db


def compare(db: Database, title: str, sql: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(sql.strip())
    print()
    optimized = run_query(db, sql)
    baseline = run_query(db, sql, config=OptimizerConfig.disabled())
    assert sorted(map(str, optimized.rows)) == sorted(map(str, baseline.rows))
    print("-- with order optimization --")
    print(optimized.plan.explain())
    print("-- disabled --")
    print(baseline.plan.explain())
    opt_sort_cols = sum(
        len(node.args["order"]) for node in optimized.plan.find_all(OpKind.SORT)
    )
    base_sort_cols = sum(
        len(node.args["order"]) for node in baseline.plan.find_all(OpKind.SORT)
    )
    print(
        f"-> sorts: {optimized.plan.sort_count()} vs "
        f"{baseline.plan.sort_count()} | total sort columns: "
        f"{opt_sort_cols} vs {base_sort_cols} | "
        f"wall: {optimized.elapsed_seconds * 1000:.0f} ms vs "
        f"{baseline.elapsed_seconds * 1000:.0f} ms"
    )
    print()


def main() -> None:
    db = build_warehouse()

    # A reporting tool groups on the key *and* its dependents (the only
    # way to project them in SQL-92), and re-sorts on the filter column.
    compare(
        db,
        "Tool-generated report: grouping on key + dependent columns",
        """
        select p.pid, p.category, p.brand, sum(s.units) as total
        from product p, sales s
        where p.pid = s.pid
        group by p.pid, p.category, p.brand
        order by p.pid
        """,
    )

    # The end-user pinned category in the WHERE clause; the tool still
    # emits it as the leading sort column.
    compare(
        db,
        "Constant-bound leading sort column",
        """
        select p.pid, p.category, sum(s.units) as total
        from product p, sales s
        where p.pid = s.pid and p.category = 'cat-3'
        group by p.pid, p.category
        order by p.category, p.pid
        """,
    )

    # GROUP BY written in one order, ORDER BY in another: the degrees-of-
    # freedom machinery (Section 7) lets one sort serve both.
    compare(
        db,
        "Permuted GROUP BY vs ORDER BY",
        """
        select st.region, p.category, sum(s.units) as total
        from product p, store st, sales s
        where p.pid = s.pid and st.sid = s.sid
        group by p.category, st.region
        order by st.region
        """,
    )


if __name__ == "__main__":
    main()
